// Package hostfile parses the static host files the Dist launcher starts
// worker processes from.
//
// A host file is line-oriented: one launch target per line, optionally
// followed by whitespace-separated key=value options. Blank lines and
// #-comments (full-line or trailing) are ignored.
//
//	# two nodes, four workers each, fixed data-plane ports
//	local        procs=4
//	10.0.0.2     procs=4  listen=10.0.0.2:9100  cmd=/opt/tram/worker
//
// The target "local" (or "localhost") launches workers on the
// coordinator's machine by self-exec — the degenerate provider every
// single-machine run uses. Any other target is an SSH destination
// (host or user@host). Options:
//
//	procs=N    worker processes on this host (default 1)
//	listen=A   data-plane bind address for this host's workers; a nonzero
//	           port is a base — worker i on the host binds port+i. Empty
//	           lets each worker bind a loopback ephemeral port.
//	cmd=P      worker binary path on this host (default: the coordinator's
//	           own executable path, which assumes a shared filesystem).
package hostfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Host is one parsed host-file entry.
type Host struct {
	// Target is the launch destination: "local"/"localhost" for the
	// self-exec provider, anything else an SSH destination.
	Target string
	// Procs is the number of worker processes this host runs (>= 1).
	Procs int
	// Listen is the data-plane bind spec for this host's workers ("" =
	// loopback ephemeral). A nonzero port is a per-host base port.
	Listen string
	// Cmd is the worker binary path on this host ("" = the coordinator's
	// executable path).
	Cmd string
}

// Local reports whether the entry uses the self-exec provider.
func (h Host) Local() bool {
	return h.Target == "local" || h.Target == "localhost"
}

// TotalProcs sums the worker counts across hosts.
func TotalProcs(hosts []Host) int {
	n := 0
	for _, h := range hosts {
		n += h.Procs
	}
	return n
}

// Parse reads a host file. It errors on a line with no target, an unknown
// or malformed option, a non-positive proc count, or a duplicate target
// (one line per host; use procs=N for multiple workers).
func Parse(r io.Reader) ([]Host, error) {
	var hosts []Host
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		h := Host{Target: fields[0], Procs: 1}
		if strings.Contains(h.Target, "=") {
			return nil, fmt.Errorf("hostfile: line %d: first field %q must be a host, not an option", lineno, h.Target)
		}
		if seen[h.Target] {
			return nil, fmt.Errorf("hostfile: line %d: duplicate host %q (use procs=N for multiple workers)", lineno, h.Target)
		}
		seen[h.Target] = true
		for _, opt := range fields[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok || v == "" {
				return nil, fmt.Errorf("hostfile: line %d: bad option %q", lineno, opt)
			}
			switch k {
			case "procs":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("hostfile: line %d: bad proc count %q", lineno, v)
				}
				h.Procs = n
			case "listen":
				h.Listen = v
			case "cmd":
				h.Cmd = v
			default:
				return nil, fmt.Errorf("hostfile: line %d: unknown option %q", lineno, k)
			}
		}
		hosts = append(hosts, h)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostfile: %w", err)
	}
	return hosts, nil
}

// ParseFile reads a host file from disk.
func ParseFile(path string) ([]Host, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}
