package dist

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"tramlib/internal/dist/hostfile"
	"tramlib/internal/faultinject"
)

// spawn is one worker process's launch plan: which proc it runs, which host
// entry launches it, and the data-plane bind spec it should use.
type spawn struct {
	proc   int
	host   hostfile.Host
	listen string // per-proc data bind spec ("" = loopback ephemeral)
}

// expandHosts resolves a host list into one spawn per proc, assigning procs
// 0..P-1 to hosts in file order. An empty list degenerates to P local
// workers (today's single-machine behavior). A host's listen spec with a
// nonzero port is treated as a base port: worker i on that host binds
// port+i, so one firewall rule covers the host's whole range.
func expandHosts(hosts []hostfile.Host, P int) ([]spawn, error) {
	if len(hosts) == 0 {
		hosts = []hostfile.Host{{Target: "local", Procs: P}}
	}
	if n := hostfile.TotalProcs(hosts); n != P {
		return nil, fmt.Errorf("dist: host file supplies %d procs for a %d-proc topology", n, P)
	}
	specs := make([]spawn, 0, P)
	for _, h := range hosts {
		for i := 0; i < h.Procs; i++ {
			listen := h.Listen
			if listen != "" {
				hostPart, portPart, err := net.SplitHostPort(listen)
				if err != nil {
					return nil, fmt.Errorf("dist: host %s: bad listen spec %q: %w", h.Target, listen, err)
				}
				base, err := strconv.Atoi(portPart)
				if err != nil || base < 0 {
					return nil, fmt.Errorf("dist: host %s: bad listen port %q", h.Target, portPart)
				}
				if base > 0 {
					listen = net.JoinHostPort(hostPart, strconv.Itoa(base+i))
				}
			}
			specs = append(specs, spawn{proc: len(specs), host: h, listen: listen})
		}
	}
	return specs, nil
}

// anyRemote reports whether any host needs the SSH provider.
func anyRemote(hosts []hostfile.Host) bool {
	for _, h := range hosts {
		if !h.Local() {
			return true
		}
	}
	return false
}

// workerCommand builds the command that starts one worker: a plain
// self-exec for local spawns, or an SSH invocation running the worker
// binary on the remote host with the dist environment set. ctrlAddr is the
// coordinator's control endpoint as the worker should dial it (a Unix
// socket path, or tcp://host:port).
func workerCommand(sp spawn, exe, ctrlAddr string) *exec.Cmd {
	env := workerEnv(sp.proc, ctrlAddr)
	if sp.host.Local() {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), env...)
		return cmd
	}
	remoteExe := sp.host.Cmd
	if remoteExe == "" {
		remoteExe = exe
	}
	// BatchMode forbids interactive prompts (a launcher must fail fast, not
	// hang on a password ask); env(1) carries the worker environment since
	// sshd filters most client-sent variables.
	args := []string{"-o", "BatchMode=yes", sp.host.Target, "env"}
	for _, kv := range env {
		args = append(args, shellQuote(kv))
	}
	args = append(args, shellQuote(remoteExe))
	return exec.Command("ssh", args...)
}

// workerEnv is the dist environment for worker p: its proc id, the control
// endpoint, and — so chaos specs reach remote workers the same way they
// reach local ones — any armed fault injection.
func workerEnv(p int, ctrlAddr string) []string {
	env := []string{
		fmt.Sprintf("%s=%d", envProc, p),
		fmt.Sprintf("%s=%s", envCtrl, ctrlAddr),
	}
	if faults := os.Getenv(faultinject.EnvVar); faults != "" {
		env = append(env, fmt.Sprintf("%s=%s", faultinject.EnvVar, faults))
	}
	return env
}

// shellQuote wraps s in single quotes for the remote shell ssh always
// interposes (fault specs carry ';', which would otherwise split commands).
func shellQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}
