package sim

import (
	"container/heap"
	"testing"
)

// boxedEngine replicates the seed engine — a container/heap priority queue of
// individually allocated *event nodes — so the benchmarks below quantify the
// arena engine against its predecessor on identical workloads.

type boxedEvent struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type boxedHeap []*boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *boxedHeap) Push(x any) {
	ev := x.(*boxedEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *boxedHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type boxedTimer struct{ ev *boxedEvent }

type boxedEngine struct {
	now       Time
	events    boxedHeap
	seq       uint64
	processed uint64
}

func (e *boxedEngine) At(t Time, fn func()) *boxedTimer {
	ev := &boxedEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &boxedTimer{ev: ev}
}

func (e *boxedEngine) Run() {
	for len(e.events) > 0 {
		next := e.events[0]
		heap.Pop(&e.events)
		if next.cancelled {
			continue
		}
		e.now = next.at
		next.fn()
		e.processed++
	}
}

// churn is the canonical queue workload: a rolling window of pending events,
// scheduled at pseudo-random offsets, drained in batches. times is a fixed
// pseudo-random schedule so both engines see identical event streams.
func churnTimes(n int) []Time {
	times := make([]Time, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range times {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		times[i] = Time(x % 1024)
	}
	return times
}

const churnWindow = 4096

// BenchmarkEngineChurn measures the arena engine on the churn workload.
// Compare with BenchmarkEngineChurnBoxedBaseline: the acceptance bar for the
// arena engine is >=2x events/sec and >=10x fewer allocs/op.
func BenchmarkEngineChurn(b *testing.B) {
	times := churnTimes(b.N)
	fn := func() {}
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(times[i], fn)
		if e.Pending() >= churnWindow {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineChurnBoxedBaseline is the seed (container/heap) engine on
// the identical workload.
func BenchmarkEngineChurnBoxedBaseline(b *testing.B) {
	times := churnTimes(b.N)
	fn := func() {}
	e := &boxedEngine{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.now+times[i], fn)
		if len(e.events) >= churnWindow {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineTimerCancel measures the schedule-then-cancel path (the
// timeout-flush pattern: most timers are cancelled before they fire).
func BenchmarkEngineTimerCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(Time(i%257), fn)
		if i%4 != 0 {
			tm.Cancel()
		}
		if e.Pending() >= churnWindow {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineNestedCascade measures event-driven rescheduling (every
// event schedules the next), the runtime pump's pattern.
func BenchmarkEngineNestedCascade(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var fn func()
	fn = func() {
		if remaining > 0 {
			remaining--
			e.After(1, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(0, fn)
	e.Run()
}
