package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.After(d, func() { order = append(order, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	for i, ti := range want {
		if order[i] != ti {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, order[i], ti, order)
		}
	}
}

func TestFIFOAtEqualTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() {
		e.After(5, func() { fired = append(fired, e.Now()) })
		e.At(12, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 12 || fired[1] != 15 {
		t.Fatalf("nested events fired at %v, want [12 15]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after scheduling")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func() {})
	e.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30} {
		e.At(d, func() { fired = append(fired, e.Now()) })
	}
	n := e.RunUntil(20)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("RunUntil(20) executed %d events (%v), want 2", n, fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v after RunUntil(20)", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not run: %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the run: executed %d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d after Stop, want 7", e.Pending())
	}
}

func TestQuiescenceReturnsEventCount(t *testing.T) {
	e := NewEngine()
	e.At(5, func() { e.After(1, func() {}) })
	if n := e.Run(); n != 2 {
		t.Fatalf("Run() = %d events, want 2", n)
	}
	if e.Pending() != 0 {
		t.Fatal("events pending after quiescence")
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(1, func() { fired = true })
	e.Drain()
	e.Run()
	if fired {
		t.Fatal("drained event fired")
	}
}

func TestTimerNotPendingAfterDrain(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func() {})
	e.Drain()
	if tm.Pending() {
		t.Fatal("timer still pending after Drain")
	}
	if tm.Cancel() {
		t.Fatal("Cancel returned true for a drained timer")
	}
}

func TestTimerInvalidAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	old := e.At(1, func() {})
	e.Run() // fires; the arena slot returns to the free list
	fired := false
	fresh := e.At(2, func() { fired = true })
	// The new event reuses the old slot; the stale handle must not alias it.
	if old.Pending() {
		t.Fatal("stale timer reports pending after slot reuse")
	}
	if old.Cancel() {
		t.Fatal("stale timer cancelled the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("new event did not fire")
	}
	if fresh.Pending() {
		t.Fatal("fired timer still pending")
	}
}

func TestCancelHeavyCompaction(t *testing.T) {
	// Cancel enough timers to trigger lazy-cancellation compaction and
	// check that the surviving events still fire in exact order.
	e := NewEngine()
	var fired []Time
	var timers []Timer
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		timers = append(timers, e.At(Time(i), func() { fired = append(fired, Time(i)) }))
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			timers[i].Cancel()
		}
	}
	if e.Pending() > n/5 {
		t.Fatalf("compaction did not shrink the heap: %d pending", e.Pending())
	}
	e.Run()
	if len(fired) != n/10 {
		t.Fatalf("fired %d events, want %d", len(fired), n/10)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("order violated after compaction: %v", fired)
		}
	}
}

func TestDeterministicUnderLoad(t *testing.T) {
	trace := func() []Time {
		e := NewEngine()
		var out []Time
		// A small self-replicating event cascade.
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, e.Now())
			if depth > 0 {
				e.After(Time(depth), func() { spawn(depth - 1) })
				e.After(Time(depth*2), func() { spawn(depth - 1) })
			}
		}
		e.At(0, func() { spawn(6) })
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			e.After(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{12_300, "12.30µs"},
		{3_500_000, "3500.00µs"},
		{1_204_000_000, "1.2040s"},
		{25_000_000_000, "25.00s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
