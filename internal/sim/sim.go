// Package sim implements a deterministic discrete-event simulation engine.
//
// All of tramlib-go's cluster experiments run on this engine: virtual time is
// an int64 nanosecond counter, events are closures ordered by (time, insertion
// sequence), and the engine runs single-threaded so results are bit-for-bit
// reproducible for a given seed and configuration.
//
// The engine intentionally has no notion of processes or networks; those live
// in internal/netsim and internal/charm. It provides exactly three services:
// scheduling (At/After), cancellable timers, and a run loop with quiescence
// detection (Run returns when no events remain, which the runtime uses as
// Charm++-style quiescence detection).
//
// # Implementation
//
// The queue is a hand-rolled 4-ary min-heap of (time, seq, slot) entries over
// an event arena with a free list, so steady-state scheduling performs no
// heap allocation: popped events return their slot to the free list, and the
// only growth is the arena and heap arrays tracking the peak number of
// in-flight events. The ordering keys are stored inline in the heap entries,
// so sift comparisons stay within the contiguous heap array and never chase
// pointers into the arena; a 4-ary layout halves tree depth versus a binary
// heap and puts sibling comparisons on adjacent cache lines. This matters
// because the engine's push/pop pair is the innermost loop of every
// experiment.
//
// Timers are value handles tagged with the slot's generation, so firing,
// cancelling, or Drain-ing invalidates outstanding handles without any
// per-timer allocation. Cancellation is lazy: a cancelled event stays in the
// heap until popped or until cancelled events outnumber live ones, at which
// point the heap compacts them away in one pass.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds as a float64.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "12.3µs" or "1.204s".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.2fµs", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.4fs", t.Seconds())
	default:
		return fmt.Sprintf("%.2fs", t.Seconds())
	}
}

// event is one arena slot: the closure plus handle bookkeeping. The ordering
// keys live in the heap entries (see heapEntry), so heap comparisons never
// touch the arena. gen increments every time the slot is released,
// invalidating Timer handles that still point at it.
type event struct {
	fn        func()
	gen       uint32
	cancelled bool
}

// heapEntry is one 4-ary-heap element: the ordering keys (at, seq) inline —
// sift comparisons stay within the contiguous heap array — plus the arena
// slot holding the closure. seq breaks ties so that events scheduled earlier
// at the same timestamp run first (FIFO at equal time), which keeps the
// simulation deterministic and makes the order total: pop order is unique
// regardless of heap shape.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

func entLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Timer is a handle to a scheduled event that can be cancelled. It is a value
// type: copying it is cheap and all copies refer to the same event. The zero
// Timer is valid and behaves as an already-fired timer.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// live reports whether the handle still refers to a scheduled, uncancelled
// event.
func (t Timer) live() bool {
	return t.eng != nil && t.eng.arena[t.slot].gen == t.gen && !t.eng.arena[t.slot].cancelled
}

// Cancel prevents the timer's function from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports whether the
// call stopped a pending event.
func (t Timer) Cancel() bool {
	if !t.live() {
		return false
	}
	e := t.eng
	e.arena[t.slot].cancelled = true
	e.nCancelled++
	// Lazy-cancellation compaction: once cancelled events outnumber live
	// ones (and there are enough to matter), sweep them out in one pass so
	// a cancel-heavy workload cannot grow the heap unboundedly.
	if e.nCancelled > 64 && e.nCancelled*2 > len(e.heap) {
		e.compact()
	}
	return true
}

// Pending reports whether the timer is still scheduled to fire. A timer whose
// event was removed by Engine.Drain is no longer pending.
func (t Timer) Pending() bool { return t.live() }

// Engine is a single-threaded discrete-event simulator. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now        Time
	arena      []event     // slot storage; indices are stable, slots are recycled
	free       []int32     // released slots available for reuse
	heap       []heapEntry // 4-ary min-heap ordered by (at, seq)
	seq        uint64
	stopped    bool
	processed  uint64
	nCancelled int // cancelled events still resident in the heap
}

// NewEngine returns an engine with virtual time 0 and an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time. During an event callback this is the
// event's scheduled time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled-but-not-yet-popped timers).
func (e *Engine) Pending() int { return len(e.heap) }

// alloc returns a free arena slot, growing the arena only when the free list
// is empty (i.e. at a new peak of in-flight events).
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.arena = append(e.arena, event{})
	return int32(len(e.arena) - 1)
}

// release invalidates outstanding Timer handles for the slot and returns it
// to the free list. The closure reference is dropped so captured state is
// collectable immediately.
func (e *Engine) release(s int32) {
	ev := &e.arena[s]
	ev.fn = nil
	ev.cancelled = false
	ev.gen++
	e.free = append(e.free, s)
}

// push inserts an entry into the heap (sift-up).
func (e *Engine) push(ent heapEntry) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
	e.heap = h
}

// popRoot removes the heap minimum (sift-down of the displaced last leaf).
func (e *Engine) popRoot() {
	h := e.heap
	n := len(h) - 1
	e.heap = h[:n]
	if n == 0 {
		return
	}
	e.heap[0] = h[n]
	e.siftDown(0)
}

// siftDown restores the heap property at i assuming all subtrees are heaps.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if !entLess(h[m], ent) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ent
}

// compact removes every cancelled event from the heap in one pass and
// re-heapifies bottom-up (O(n)).
func (e *Engine) compact() {
	live := e.heap[:0]
	for _, ent := range e.heap {
		if e.arena[ent.slot].cancelled {
			e.release(ent.slot)
		} else {
			live = append(live, ent)
		}
	}
	e.heap = live
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
	e.nCancelled = 0
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in a cost model.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	s := e.alloc()
	ev := &e.arena[s]
	ev.fn = fn
	e.push(heapEntry{at: t, seq: e.seq, slot: s})
	e.seq++
	return Timer{eng: e, slot: s, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending events are
// left in the queue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty (quiescence)
// or Stop is called. It returns the number of events executed by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamp <= deadline. The virtual clock is
// left at the last executed event's time (or deadline if no event exceeded
// it but the queue still holds later events).
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.heap) > 0 && !e.stopped {
		root := e.heap[0]
		if root.at > deadline {
			e.now = deadline
			break
		}
		ev := &e.arena[root.slot]
		if ev.cancelled {
			// Skipped events do not advance the clock.
			e.nCancelled--
			e.popRoot()
			e.release(root.slot)
			continue
		}
		fn := ev.fn
		e.popRoot()
		e.release(root.slot)
		e.now = root.at
		fn()
		n++
		e.processed++
	}
	return n
}

// Drain removes all pending events without executing them and invalidates
// their timers. Useful between trials that reuse an engine.
func (e *Engine) Drain() {
	for _, ent := range e.heap {
		e.release(ent.slot)
	}
	e.heap = e.heap[:0]
	e.nCancelled = 0
}
