// Package sim implements a deterministic discrete-event simulation engine.
//
// All of tramlib-go's cluster experiments run on this engine: virtual time is
// an int64 nanosecond counter, events are closures ordered by (time, insertion
// sequence), and the engine runs single-threaded so results are bit-for-bit
// reproducible for a given seed and configuration.
//
// The engine intentionally has no notion of processes or networks; those live
// in internal/netsim and internal/charm. It provides exactly three services:
// scheduling (At/After), cancellable timers, and a run loop with quiescence
// detection (Run returns when no events remain, which the runtime uses as
// Charm++-style quiescence detection).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds as a float64.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "12.3µs" or "1.204s".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.2fµs", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.4fs", t.Seconds())
	default:
		return fmt.Sprintf("%.2fs", t.Seconds())
	}
}

// event is a scheduled closure. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO at equal time), which keeps
// the simulation deterministic.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the timer's function from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports whether the
// call stopped a pending event.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.index < 0 {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && t.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now       Time
	events    eventHeap
	seq       uint64
	stopped   bool
	processed uint64
}

// NewEngine returns an engine with virtual time 0 and an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time. During an event callback this is the
// event's scheduled time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled-but-not-yet-popped timers).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in a cost model.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending events are
// left in the queue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty (quiescence)
// or Stop is called. It returns the number of events executed by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamp <= deadline. The virtual clock is
// left at the last executed event's time (or deadline if no event exceeded
// it but the queue still holds later events).
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			e.now = deadline
			break
		}
		heap.Pop(&e.events)
		if next.cancelled {
			continue
		}
		e.now = next.at
		next.fn()
		n++
		e.processed++
	}
	return n
}

// Drain removes all pending events without executing them. Useful between
// trials that reuse an engine.
func (e *Engine) Drain() {
	e.events = e.events[:0]
}
