package serve

import (
	"fmt"
	"sync"
	"time"

	"tramlib/internal/stats"
	"tramlib/internal/traffic"
)

// LoadConfig parameterizes a load-generation run against a tramserve
// frontend. Clients are simulated: each is an independent event source with
// its own destination stream, multiplexed over Conns TCP connections — the
// standard way to model 10^5..10^6 fine-grained producers from one box
// without 10^6 sockets.
type LoadConfig struct {
	// Addr is the frontend's client address.
	Addr string
	// Clients is the number of simulated event sources.
	Clients int
	// Conns is the number of TCP connections multiplexing them.
	Conns int
	// EventsPerClient is each simulated client's event count.
	EventsPerClient int
	// Workers is the server topology's global worker count (destination
	// space).
	Workers int
	// Rate, if positive, paces the aggregate offered load in events/sec;
	// 0 offers load as fast as backpressure admits.
	Rate float64
	// Window and Batch tune each connection's client (0: defaults).
	Window, Batch int
	// Seed makes the destination streams reproducible.
	Seed int64
	// Shape selects the destination and arrival pattern: the zero value (or
	// traffic.Uniform) reproduces the classic uniform stream byte for byte;
	// traffic.Zipf skews destinations; traffic.Burst gates sends through
	// shared on/off phases. See internal/traffic.
	Shape traffic.Spec
	// Drain, if set, is invoked once every connection has sent its share
	// (typically the server's drain); the run then waits for each
	// connection's final drained ack instead of a plain ack barrier.
	Drain func() error
}

// LoadReport is a load run's outcome.
type LoadReport struct {
	Clients  int     `json:"clients"`
	Conns    int     `json:"conns"`
	Offered  float64 `json:"offered_eps"`  // configured rate (0 = unpaced)
	Achieved float64 `json:"achieved_eps"` // acked events / wall time
	Sent     int64   `json:"sent"`
	Acked    int64   `json:"acked"`
	WallSec  float64 `json:"wall_sec"`
	// P50/P99 are ack-latency quantiles in nanoseconds: the time from a
	// batch's send to the cumulative ack covering it (admission latency as
	// the client observes it, including queueing under backpressure).
	P50 int64 `json:"p50_ack_ns"`
	P99 int64 `json:"p99_ack_ns"`
}

// Run drives the configured load and blocks until every simulated client's
// events are acked (and, with Drain set, until the server's drain completes).
func Run(cfg LoadConfig) (LoadReport, error) {
	if cfg.Clients <= 0 || cfg.Conns <= 0 || cfg.EventsPerClient <= 0 || cfg.Workers <= 0 {
		return LoadReport{}, fmt.Errorf("serve: load config needs positive Clients/Conns/EventsPerClient/Workers")
	}
	if cfg.Conns > cfg.Clients {
		cfg.Conns = cfg.Clients
	}
	if err := cfg.Shape.Validate(); err != nil {
		return LoadReport{}, err
	}
	hist := stats.NewAtomicHist()
	clients := make([]*Client, cfg.Conns)
	for i := range clients {
		c, err := Dial(cfg.Addr, ClientConfig{
			Window:      cfg.Window,
			Batch:       cfg.Batch,
			LatencyHist: hist,
		})
		if err != nil {
			for _, cc := range clients[:i] {
				cc.Close()
			}
			return LoadReport{}, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Partition the simulated clients over the connections; each connection
	// round-robins its share so per-client event order is preserved while
	// the interleaving models independent sources.
	perConnRate := cfg.Rate / float64(cfg.Conns)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Conns)
	for i, c := range clients {
		lo := i * cfg.Clients / cfg.Conns
		hi := (i + 1) * cfg.Clients / cfg.Conns
		wg.Add(1)
		go func(i int, c *Client, nClients int) {
			defer wg.Done()
			errs[i] = driveConn(c, cfg, nClients, int64(i), perConnRate, start)
		}(i, c, hi-lo)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return LoadReport{}, err
		}
	}

	// All events handed to the sockets: barrier on acks (or the full drain).
	var sent, acked int64
	if cfg.Drain != nil {
		// Let the server admit the tail — the drain guarantee covers acked
		// events only, so barrier on full acknowledgment first — then drain.
		for _, c := range clients {
			c.Flush()
		}
		for _, c := range clients {
			if _, err := c.WaitAcked(c.Sent()); err != nil {
				return LoadReport{}, err
			}
		}
		if err := cfg.Drain(); err != nil {
			return LoadReport{}, err
		}
		for _, c := range clients {
			n, err := c.WaitDrained()
			if err != nil {
				return LoadReport{}, err
			}
			sent += c.Sent()
			acked += n
		}
	} else {
		for _, c := range clients {
			c.Flush()
			n, err := c.WaitAcked(c.Sent())
			if err != nil {
				return LoadReport{}, err
			}
			sent += c.Sent()
			acked += n
		}
	}
	wall := time.Since(start)

	lat := stats.FromState(hist.State())
	rep := LoadReport{
		Clients: cfg.Clients,
		Conns:   cfg.Conns,
		Offered: cfg.Rate,
		Sent:    sent,
		Acked:   acked,
		WallSec: wall.Seconds(),
	}
	if wall > 0 {
		rep.Achieved = float64(acked) / wall.Seconds()
	}
	if lat.Count() > 0 {
		rep.P50 = lat.Quantile(0.50)
		rep.P99 = lat.Quantile(0.99)
	}
	return rep, nil
}

// driveConn interleaves nClients simulated sources over one connection,
// pacing to rate events/sec when positive. origin anchors the burst gate's
// phase, shared across connections so sources burst together.
func driveConn(c *Client, cfg LoadConfig, nClients int, seed int64, rate float64, origin time.Time) error {
	// The picker's uniform path reproduces the plain rand.Intn stream this
	// function always drew, so the zero Shape changes nothing.
	picker := traffic.NewPicker(cfg.Shape, cfg.Seed*7919+seed, cfg.Workers)
	var gate *traffic.Gate
	if cfg.Shape.Kind == traffic.Burst {
		gate = traffic.NewGate(cfg.Shape, origin)
	}
	total := nClients * cfg.EventsPerClient
	var interval time.Duration
	var next time.Time
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
		next = time.Now()
	}
	for n := 0; n < total; n++ {
		if gate != nil {
			if w := gate.Wait(time.Now()); w > 0 {
				time.Sleep(w)
			}
		}
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		// Event n belongs to simulated client n%nClients; its destination
		// stream is an independent draw over the worker space.
		dest := uint32(picker.Next())
		if err := c.Send(dest, uint64(n)); err != nil {
			return err
		}
	}
	return nil
}
