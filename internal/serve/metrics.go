package serve

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"tramlib/internal/rt"
	"tramlib/internal/stats"
)

// MetricsSource exposes the runtime half of the scrape endpoint: live
// counters plus the flush-latency histogram the runtime feeds. Scheme labels
// the output so dashboards can compare aggregation schemes.
type MetricsSource struct {
	Scheme    string
	Counters  func() rt.Counters
	FlushHist *stats.AtomicHist
}

// metricsServer serves the plain-text scrape endpoint. Each GET /metrics
// reports cumulative counters plus windowed rates and flush-latency quantiles
// (the delta since the previous scrape, via stats.Window).
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
	fe  *Frontend
	src *MetricsSource

	mu         sync.Mutex
	flushWin   stats.Window
	lastScrape time.Time
	lastAdm    int64
}

func newMetricsServer(listen string, fe *Frontend, src *MetricsSource) (*metricsServer, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("serve: metrics listen %s: %w", listen, err)
	}
	m := &metricsServer{ln: ln, fe: fe, src: src, lastScrape: time.Now()}
	if src != nil && src.FlushHist != nil {
		// Prime the flush window at the edge lastScrape marks: the first
		// scrape's latency quantiles then cover the same interval as its
		// admitted_per_second rate, instead of the histogram's whole
		// pre-server history.
		m.flushWin.Advance(src.FlushHist.State())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handle)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	return m, nil
}

func (m *metricsServer) addr() string { return m.ln.Addr().String() }

func (m *metricsServer) close() { m.srv.Close() }

// handle renders one scrape. The windowed sections (events/sec, flush-latency
// quantiles) cover the interval since the previous scrape; scrape-state
// mutation is serialized so concurrent scrapers cannot corrupt the window,
// though each then sees its own (shorter) interval.
func (m *metricsServer) handle(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	dt := now.Sub(m.lastScrape).Seconds()
	adm := m.fe.Admitted()
	var eps float64
	if dt > 0 {
		eps = float64(adm-m.lastAdm) / dt
	}
	m.lastScrape, m.lastAdm = now, adm

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "tramserve_admitted_total %d\n", adm)
	fmt.Fprintf(w, "tramserve_admitted_per_second %.1f\n", eps)
	fmt.Fprintf(w, "tramserve_shed_total %d\n", m.fe.shed.Load())
	fmt.Fprintf(w, "tramserve_connections %d\n", m.fe.Connections())
	fmt.Fprintf(w, "tramserve_connections_total %d\n", m.fe.connsAll.Load())

	if m.src == nil {
		return
	}
	fmt.Fprintf(w, "tramserve_scheme{name=%q} 1\n", m.src.Scheme)
	if m.src.Counters != nil {
		c := m.src.Counters()
		fmt.Fprintf(w, "tramserve_rt_inserted_total %d\n", c.Inserted)
		fmt.Fprintf(w, "tramserve_rt_delivered_total %d\n", c.Delivered)
		fmt.Fprintf(w, "tramserve_rt_inflight %d\n", c.Inflight)
		fmt.Fprintf(w, "tramserve_rt_batches_total %d\n", c.Batches)
		fmt.Fprintf(w, "tramserve_rt_full_batches_total %d\n", c.FullBatches)
		fmt.Fprintf(w, "tramserve_rt_flushes_total %d\n", c.Flushes)
		fmt.Fprintf(w, "tramserve_rt_deadline_flushes_total %d\n", c.DeadlineFlushes)
		fmt.Fprintf(w, "tramserve_rt_remote_sent_total %d\n", c.RemoteSent)
		fmt.Fprintf(w, "tramserve_rt_remote_recv_total %d\n", c.RemoteRecv)
		fmt.Fprintf(w, "tramserve_ingress_used %d\n", c.IngressUsed)
		fmt.Fprintf(w, "tramserve_ingress_cap %d\n", c.IngressCap)
	}
	if m.src.FlushHist != nil {
		win := m.flushWin.Advance(m.src.FlushHist.State())
		fmt.Fprintf(w, "tramserve_flush_latency_window_count %d\n", win.Count())
		if win.Count() > 0 {
			for _, q := range []struct {
				name string
				q    float64
			}{{"p50", 0.50}, {"p99", 0.99}} {
				fmt.Fprintf(w, "tramserve_flush_latency_ns{quantile=%q} %d\n",
					q.name, win.Quantile(q.q))
			}
		}
	}
}
