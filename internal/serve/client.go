package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tramlib/internal/dist"
	"tramlib/internal/stats"
	"tramlib/internal/wire"
)

// ErrDrained marks a Send attempted after the server announced its drain:
// the connection's final ack is in, nothing further will be admitted.
var ErrDrained = errors.New("serve: server drained")

// Client is one tramserve connection: it streams events, tracks the server's
// cumulative acks, and bounds its own unacked window (Send blocks when
// Window events are outstanding — the client half of the end-to-end
// backpressure chain). Not safe for concurrent Send; every other method is
// safe from any goroutine.
type Client struct {
	conn net.Conn

	// Send-side buffers (owned by the sending goroutine).
	buf     []wire.Item
	wbuf    []byte
	batch   int
	latHist *stats.AtomicHist

	mu      sync.Mutex
	cond    *sync.Cond
	sent    int64 // events handed to the connection
	acked   int64 // server's cumulative admitted count
	sentAt  []sendMark
	window  int64
	drained bool
	err     error // terminal state: set once, then cond broadcast
}

// sendMark pairs a cumulative send count with its wall-clock instant, for
// ack-latency measurement: when the ack counter passes Seq, the events up to
// it waited now-At.
type sendMark struct {
	Seq int64
	At  time.Time
}

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	// Window bounds unacked events in flight (0: DefaultClientWindow).
	Window int
	// Batch is the per-frame event count (0: DefaultClientBatch).
	Batch int
	// LatencyHist, if non-nil, observes per-batch ack latencies (nanoseconds
	// from a batch's send to the ack covering it).
	LatencyHist *stats.AtomicHist
}

// Client flow-control defaults.
const (
	DefaultClientWindow = 1 << 16
	DefaultClientBatch  = 256
)

// Dial connects to a tramserve frontend.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	window := cfg.Window
	if window <= 0 {
		window = DefaultClientWindow
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultClientBatch
	}
	c := &Client{
		conn:    conn,
		batch:   batch,
		window:  int64(window),
		latHist: cfg.LatencyHist,
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop()
	return c, nil
}

// readLoop consumes server control frames until the connection ends.
func (c *Client) readLoop() {
	rd := wire.NewReader(c.conn, wire.DefaultMaxFrameBytes)
	for {
		fr, err := rd.Next()
		if err != nil {
			c.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		if fr.Kind != wire.KindControl {
			continue
		}
		switch fr.Dest {
		case OpAck, OpDrained:
			var doc ackDoc
			if err := json.Unmarshal(fr.Payload, &doc); err != nil {
				c.fail(fmt.Errorf("serve: bad ack frame: %w", err))
				return
			}
			c.noteAck(doc.N, fr.Dest == OpDrained)
			if fr.Dest == OpDrained {
				return
			}
		case OpFail:
			var doc failDoc
			if err := json.Unmarshal(fr.Payload, &doc); err != nil {
				c.fail(fmt.Errorf("serve: bad failure frame: %w", err))
				return
			}
			c.fail(&dist.PeerFailureError{
				Proc:  doc.Proc,
				Phase: doc.Phase,
				Err:   fmt.Errorf("%w: %s", dist.ErrPeerDied, doc.Msg),
			})
			return
		}
	}
}

// noteAck advances the ack counter, retires latency marks, and wakes blocked
// senders.
func (c *Client) noteAck(n int64, final bool) {
	now := time.Now()
	c.mu.Lock()
	if n > c.acked {
		c.acked = n
	}
	if final {
		c.drained = true
	}
	if c.latHist != nil {
		for len(c.sentAt) > 0 && c.sentAt[0].Seq <= c.acked {
			c.latHist.Observe(now.Sub(c.sentAt[0].At).Nanoseconds())
			c.sentAt = c.sentAt[1:]
		}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// fail records the terminal error and wakes everything blocked on the client.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Send queues one event for the given global worker id, transmitting a frame
// whenever the batch fills. It blocks while the unacked window is full and
// returns the terminal error if the connection failed.
func (c *Client) Send(dest uint32, val uint64) error {
	c.mu.Lock()
	for c.err == nil && !c.drained && c.sent-c.acked >= c.window {
		c.cond.Wait()
	}
	err := c.err
	if err == nil && c.drained {
		err = ErrDrained
	}
	if err == nil {
		c.sent++
	}
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.buf = append(c.buf, wire.Item{Dest: dest, Val: val})
	if len(c.buf) >= c.batch {
		return c.Flush()
	}
	return nil
}

// Flush transmits any batched events immediately.
func (c *Client) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	c.wbuf = wire.AppendItems(c.wbuf[:0], 0, 0, c.buf, false)
	c.buf = c.buf[:0]
	if c.latHist != nil {
		c.mu.Lock()
		c.sentAt = append(c.sentAt, sendMark{Seq: c.sent, At: time.Now()})
		c.mu.Unlock()
	}
	if _, err := c.conn.Write(c.wbuf); err != nil {
		err = fmt.Errorf("serve: send: %w", err)
		c.fail(err)
		return err
	}
	return nil
}

// Sent returns the number of events handed to the connection so far.
func (c *Client) Sent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// Acked returns the server's cumulative admitted count for this connection.
func (c *Client) Acked() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// Err returns the terminal error, nil while the connection is healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// WaitAcked blocks until the server has acked at least n events, the
// connection fails, or the server drains (whichever first). On a clean drain
// with fewer than n acks it returns the drained count and no error.
func (c *Client) WaitAcked(n int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && !c.drained && c.acked < n {
		c.cond.Wait()
	}
	return c.acked, c.err
}

// WaitDrained blocks until the server sends its final OpDrained ack (clean
// drain) or the connection fails, returning the final cumulative admitted
// count. Every event counted is guaranteed delivered by the server's drain.
func (c *Client) WaitDrained() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && !c.drained {
		c.cond.Wait()
	}
	return c.acked, c.err
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.Flush()
	return c.conn.Close()
}
