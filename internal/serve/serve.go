// Package serve is the tramserve subsystem's front end: a long-running TCP
// ingestion service in front of the aggregation runtime (internal/rt in serve
// mode), with per-connection flow control, live metrics, and a zero-loss
// graceful drain.
//
// # Protocol
//
// Clients speak internal/wire framing over a plain TCP connection:
//
//   - client -> server: KindItems frames; each item is (dest global worker
//     id, uint64 value). The header's dest-process field is unused.
//   - server -> client: KindControl frames. OpAck carries {"n": N}, the
//     cumulative count of this connection's admitted events — an ack is an
//     admission into the runtime, and the drain guarantee below turns it
//     into a delivery guarantee. OpDrained carries the final cumulative
//     count and announces a clean close. OpFail carries {"msg", "proc",
//     "phase"}: the serving topology lost a process; the client surfaces it
//     as a typed *dist.PeerFailureError.
//
// # Flow control
//
// Admission is bounded end to end: the runtime's per-destination ingress
// windows (rt.Config.IngressCap) make Ingest block when a destination is
// saturated, the connection handler stops reading while blocked, and TCP
// pushes back to the client, whose Send blocks on its configured ack window.
// A stalled consumer therefore stalls exactly the connections feeding it,
// with per-connection server-side memory bounded by one frame plus the
// ingress credits its events hold — never an unbounded queue.
//
// # Drain
//
// Drain stops accepting, interrupts every connection's read loop, lets
// in-progress frames finish admission, sends each client a final OpDrained
// ack, waits for the handlers, and force-seals the ingress aggregation
// buffers. When it returns, every acked event is in the runtime; the
// caller's quiescence barrier (rt.WaitQuiet locally, or the dist
// coordinator's four-counter detection) then makes them all delivered.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tramlib/internal/cluster"
	"tramlib/internal/wire"
)

// Control opcodes of server->client KindControl frames (carried in the
// header's dest field, like the dist control protocol).
const (
	// OpAck: doc {"n": cumulative admitted events on this connection}.
	OpAck uint32 = iota + 1
	// OpDrained: doc {"n": final count}; the server closes after sending.
	OpDrained
	// OpFail: doc {"msg","proc","phase"}; the serving topology failed.
	OpFail
)

// ackDoc is the OpAck / OpDrained payload.
type ackDoc struct {
	N int64 `json:"n"`
}

// failDoc is the OpFail payload.
type failDoc struct {
	Msg   string `json:"msg"`
	Proc  int    `json:"proc"`
	Phase string `json:"phase"`
}

// Injector is the runtime surface the frontend feeds; *rt.Runtime in serve
// mode satisfies it.
type Injector interface {
	// Ingest admits one event, blocking on the destination's admission
	// window until admitted, abort fires, or the runtime stops.
	Ingest(dest cluster.WorkerID, value uint64, abort <-chan struct{}) error
	// FlushIngress force-seals partial ingress aggregation buffers.
	FlushIngress()
	// Workers returns the destination space (total workers).
	Workers() int
}

// Config parameterizes a Frontend.
type Config struct {
	// Listen is the client listener's TCP bind address ("127.0.0.1:0" for an
	// ephemeral port).
	Listen string
	// MetricsListen, if non-empty, binds the HTTP scrape endpoint.
	MetricsListen string
	// Inj routes admitted events into the runtime.
	Inj Injector
	// Metrics, if non-nil, feeds the scrape endpoint's runtime section and
	// flush-latency quantiles (see MetricsSource).
	Metrics *MetricsSource
	// MaxFrameBytes bounds accepted client frames (0: wire default).
	MaxFrameBytes int
}

// Frontend is the running ingestion listener. Create with New; end with
// Drain (clean) or Abort (failure), then Close.
type Frontend struct {
	cfg  Config
	ln   net.Listener
	inj  Injector
	maxF int

	// abortC is closed by Abort: it unblocks in-flight Ingest calls so
	// handlers can fail their connections promptly.
	abortC    chan struct{}
	abortOnce sync.Once
	draining  atomic.Bool

	mu    sync.Mutex
	conns map[*connState]struct{}
	fail  *failDoc // set before abortC closes

	wg      sync.WaitGroup
	metrics *metricsServer

	admitted atomic.Int64 // events admitted across all connections
	connsNow atomic.Int64
	connsAll atomic.Int64
	shed     atomic.Int64 // events rejected for invalid destination
}

// connState is one client connection's server-side state.
type connState struct {
	conn      net.Conn
	admitted  int64 // owned by the handler goroutine
	wmu       sync.Mutex
	wbuf      []byte
	finalized bool // guarded by wmu: a final OpDrained/OpFail was sent
}

// New binds the listener(s) and starts accepting client connections.
func New(cfg Config) (*Frontend, error) {
	if cfg.Inj == nil {
		return nil, errors.New("serve: Config.Inj is required")
	}
	maxF := cfg.MaxFrameBytes
	if maxF <= 0 {
		maxF = wire.DefaultMaxFrameBytes
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Listen, err)
	}
	f := &Frontend{
		cfg:    cfg,
		ln:     ln,
		inj:    cfg.Inj,
		maxF:   maxF,
		abortC: make(chan struct{}),
		conns:  map[*connState]struct{}{},
	}
	if cfg.MetricsListen != "" {
		m, err := newMetricsServer(cfg.MetricsListen, f, cfg.Metrics)
		if err != nil {
			ln.Close()
			return nil, err
		}
		f.metrics = m
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the client listener's address.
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

// MetricsAddr returns the scrape endpoint's address ("" if disabled).
func (f *Frontend) MetricsAddr() string {
	if f.metrics == nil {
		return ""
	}
	return f.metrics.addr()
}

// Admitted returns the total events admitted so far.
func (f *Frontend) Admitted() int64 { return f.admitted.Load() }

// Connections returns the current open client connection count.
func (f *Frontend) Connections() int64 { return f.connsNow.Load() }

func (f *Frontend) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed: drain or abort
		}
		cs := &connState{conn: conn}
		f.mu.Lock()
		if f.draining.Load() || f.aborted() {
			f.mu.Unlock()
			conn.Close()
			continue
		}
		f.conns[cs] = struct{}{}
		f.mu.Unlock()
		f.connsNow.Add(1)
		f.connsAll.Add(1)
		f.wg.Add(1)
		go f.handle(cs)
	}
}

func (f *Frontend) aborted() bool {
	select {
	case <-f.abortC:
		return true
	default:
		return false
	}
}

// handle is one connection's read-admit-ack loop.
func (f *Frontend) handle(cs *connState) {
	defer f.wg.Done()
	defer func() {
		f.mu.Lock()
		delete(f.conns, cs)
		f.mu.Unlock()
		f.connsNow.Add(-1)
		cs.conn.Close()
	}()
	W := cluster.WorkerID(f.inj.Workers())
	rd := wire.NewReader(cs.conn, f.maxF)
	var scratch []wire.Item
	for {
		fr, err := rd.Next()
		if err != nil {
			// Drain and abort interrupt the blocked read via a past read
			// deadline; a finalize frame tells the client which it was.
			// Otherwise the client closed (or broke) the connection.
			switch {
			case f.aborted():
				f.finalizeFail(cs)
				discardInput(cs.conn)
			case f.draining.Load():
				f.finalizeDrained(cs)
				discardInput(cs.conn)
			}
			return
		}
		if fr.Kind != wire.KindItems {
			continue // unknown frames are ignored, not fatal: forward compat
		}
		if int(fr.Count) > cap(scratch) {
			scratch = make([]wire.Item, fr.Count)
		}
		scratch = fr.Items(scratch[:fr.Count])
		frameAdmitted := int64(0)
		for _, it := range scratch {
			dest := cluster.WorkerID(it.Dest)
			if dest < 0 || dest >= W {
				f.shed.Add(1)
				continue
			}
			if err := f.inj.Ingest(dest, it.Val, f.abortC); err != nil {
				// The runtime refused the event: the topology is failing.
				// The runtime stop that unblocked us can run microseconds
				// ahead of the Abort carrying the failure's attribution
				// (the worker latches a send failure by stopping the
				// runtime first), so give the abort a moment to record its
				// doc before finalizing the connection.
				select {
				case <-f.abortC:
				case <-time.After(2 * time.Second):
				}
				f.finalizeFail(cs)
				return
			}
			cs.admitted++
			frameAdmitted++
		}
		f.admitted.Add(frameAdmitted)
		if !f.sendAck(cs, OpAck, cs.admitted) {
			return
		}
	}
}

// sendAck writes an OpAck/OpDrained control frame, reporting success.
func (cs *connState) send(opcode uint32, doc any) bool {
	raw, err := json.Marshal(doc)
	if err != nil {
		return false
	}
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	if cs.finalized {
		return false
	}
	if opcode != OpAck {
		cs.finalized = true
	}
	cs.wbuf = wire.AppendControl(cs.wbuf[:0], 0, opcode, raw)
	_, err = cs.conn.Write(cs.wbuf)
	return err == nil
}

func (f *Frontend) sendAck(cs *connState, opcode uint32, n int64) bool {
	return cs.send(opcode, ackDoc{N: n})
}

// finalizeDrained sends the final cumulative ack and closes the write side.
func (f *Frontend) finalizeDrained(cs *connState) {
	f.sendAck(cs, OpDrained, cs.admitted)
}

// finalizeFail notifies the client of the recorded failure.
func (f *Frontend) finalizeFail(cs *connState) {
	f.mu.Lock()
	doc := f.fail
	f.mu.Unlock()
	if doc == nil {
		doc = &failDoc{Msg: "server aborted", Proc: -1}
	}
	cs.send(OpFail, *doc)
}

// discardInput consumes whatever the client still had in flight when its
// final frame was sent, so the deferred Close sends a clean FIN: closing a
// TCP socket with unread received data aborts the connection with an RST,
// which can destroy the just-written OpDrained/OpFail before the client
// reads it. Bounded: the client closes once it has the final frame (EOF
// here), and the deadline cuts off a client that never does.
func discardInput(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	var buf [4096]byte
	for {
		if _, err := conn.Read(buf[:]); err != nil {
			return
		}
	}
}

// interruptReads wakes every connection's blocked read.
func (f *Frontend) interruptReads() {
	f.mu.Lock()
	defer f.mu.Unlock()
	past := time.Unix(1, 0)
	for cs := range f.conns {
		cs.conn.SetReadDeadline(past)
	}
}

// Drain performs the zero-loss shutdown of the ingestion edge: stop
// accepting, interrupt reads (in-progress frames still finish admission),
// send every client its final OpDrained ack, wait for the handlers, then
// force-seal the ingress aggregation buffers. When Drain returns, every
// acked event has been admitted into the runtime. Idempotent.
func (f *Frontend) Drain() error {
	if !f.draining.CompareAndSwap(false, true) {
		f.wg.Wait()
		return nil
	}
	f.ln.Close()
	f.interruptReads()
	f.wg.Wait()
	f.inj.FlushIngress()
	return nil
}

// Abort ends the service on a topology failure: every connected client gets
// an OpFail frame naming the failing process and phase, in-flight admissions
// unblock, and the listener closes. Idempotent (the first failure wins).
func (f *Frontend) Abort(proc int, phase, msg string) {
	f.abortOnce.Do(func() {
		f.mu.Lock()
		f.fail = &failDoc{Msg: msg, Proc: proc, Phase: phase}
		f.mu.Unlock()
		close(f.abortC)
		f.ln.Close()
		f.interruptReads()
	})
}

// Close releases the frontend's resources (listener, metrics endpoint). Call
// after Drain or Abort; connections still open are dropped.
func (f *Frontend) Close() error {
	f.draining.Store(true)
	f.ln.Close()
	f.interruptReads()
	f.wg.Wait()
	if f.metrics != nil {
		f.metrics.close()
	}
	return nil
}
