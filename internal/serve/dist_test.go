package serve_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tramlib/internal/cluster"
	"tramlib/internal/core"
	"tramlib/internal/dist"
	"tramlib/internal/rt"
	"tramlib/internal/serve"
	"tramlib/internal/transport"
)

// The test binary doubles as the dist worker binary: worker invocations route
// into WorkerMain with the serve test app before any test runs.
func TestMain(m *testing.M) {
	dist.WorkerMain(buildServeApp)
	os.Exit(m.Run())
}

// liveaggParams parameterizes the serve-mode test workload; the worker
// rebuilds the exact coordinator config from it (the handshake checks a
// digest).
type liveaggParams struct {
	Topo   cluster.Topology `json:"topo"`
	Scheme core.Scheme      `json:"scheme"`
	G      int              `json:"g"`
}

// liveaggReport is one process's observed deliveries.
type liveaggReport struct {
	Count int64  `json:"count"`
	Xor   uint64 `json:"xor"`
}

func (p liveaggParams) rtConfig() rt.Config {
	return rt.Config{
		Topo:          p.Topo,
		Scheme:        p.Scheme,
		BufferItems:   p.G,
		FlushDeadline: 200 * time.Microsecond,
		ChunkSize:     64,
	}
}

// buildServeApp is the worker-side registry: a consume-only aggregation app
// whose frontend process binds a serve.Frontend, with per-process delivery
// count and xor in the report.
func buildServeApp(name string, params []byte, proc cluster.ProcID) (dist.App, error) {
	if name != "liveagg" {
		return dist.App{}, fmt.Errorf("unknown serve test app %q", name)
	}
	var p liveaggParams
	if err := json.Unmarshal(params, &p); err != nil {
		return dist.App{}, err
	}
	var count atomic.Int64
	var xor atomic.Uint64
	return dist.App{
		RT: p.rtConfig(),
		Deliver: func(ctx *rt.Ctx, v uint64) {
			count.Add(1)
			for {
				old := xor.Load()
				if xor.CompareAndSwap(old, old^v) {
					break
				}
			}
			ctx.Contribute(1)
		},
		Spawn: func(cluster.WorkerID) (int, rt.KernelFunc) { return 0, nil },
		Report: func() []byte {
			b, _ := json.Marshal(liveaggReport{Count: count.Load(), Xor: xor.Load()})
			return b
		},
		Serve: func(rtm *rt.Runtime, opts dist.ServeOpts) (dist.FrontendHandle, error) {
			fe, err := serve.New(serve.Config{
				Listen:        opts.Listen,
				MetricsListen: opts.MetricsListen,
				Inj:           rtm,
				Metrics: &serve.MetricsSource{
					Scheme:    p.Scheme.String(),
					Counters:  rtm.Counters,
					FlushHist: opts.FlushHist,
				},
			})
			if err != nil {
				return nil, err
			}
			return fe, nil
		},
	}, nil
}

// startDistServe starts a 2-process serve topology over the given transport.
func startDistServe(t *testing.T, kind transport.Kind, scheme core.Scheme) (*dist.Server, liveaggParams) {
	t.Helper()
	p := liveaggParams{Topo: cluster.SMP(1, 2, 2), Scheme: scheme, G: 64}
	params, _ := json.Marshal(p)
	srv, err := dist.Serve(dist.Config{
		RT:           p.rtConfig(),
		Name:         "liveagg",
		Params:       params,
		Transport:    kind,
		StartTimeout: 60 * time.Second,
		RunTimeout:   60 * time.Second,
		Serve:        &dist.ServeSpec{Listen: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatalf("dist.Serve (%v): %v", kind, err)
	}
	return srv, p
}

// sumReports totals the per-process delivery reports.
func sumReports(t *testing.T, res dist.Result) (int64, uint64) {
	t.Helper()
	var count int64
	var xor uint64
	for p, pr := range res.Procs {
		var rep liveaggReport
		if err := json.Unmarshal(pr.Report, &rep); err != nil {
			t.Fatalf("proc %d report: %v", p, err)
		}
		count += rep.Count
		xor ^= rep.Xor
	}
	return count, xor
}

// TestDistServeDrainZeroLoss pins the drain guarantee end to end on the Dist
// backend, for both same-node data planes: clients stream unique values into a
// 2-process topology (worker destinations span both processes, so events
// cross the transport mesh), and after Drain the per-process delivery reports
// exactly match the acked events.
func TestDistServeDrainZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	for _, kind := range []transport.Kind{transport.Socket, transport.Shm} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			srv, _ := startDistServe(t, kind, core.PP)

			const conns = 3
			var sentXor [conns]uint64
			var sentUpTo [conns]int64
			clients := make([]*serve.Client, conns)
			for i := range clients {
				c, err := serve.Dial(srv.Addr(), serve.ClientConfig{Window: 512, Batch: 32})
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				clients[i] = c
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *serve.Client) {
					defer wg.Done()
					for n := int64(0); ; n++ {
						select {
						case <-stop:
							c.Flush()
							return
						default:
						}
						v := uint64(i+1)<<48 | uint64(n)
						if err := c.Send(uint32(n)%4, v); err != nil {
							return
						}
						sentXor[i] ^= v
						sentUpTo[i] = n + 1
					}
				}(i, c)
			}
			time.Sleep(50 * time.Millisecond)
			close(stop)
			wg.Wait()
			for i, c := range clients {
				if _, err := c.WaitAcked(sentUpTo[i]); err != nil {
					t.Fatalf("conn %d acks: %v", i, err)
				}
			}

			res, err := srv.Drain()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}

			var acked int64
			wantXor := uint64(0)
			for i, c := range clients {
				n, err := c.WaitDrained()
				if err != nil {
					t.Fatalf("conn %d drained: %v", i, err)
				}
				if n != sentUpTo[i] {
					t.Fatalf("conn %d acked %d of %d sent", i, n, sentUpTo[i])
				}
				acked += n
				wantXor ^= sentXor[i]
				c.Close()
			}
			if acked == 0 {
				t.Fatal("no events acked; the stream never established")
			}
			count, xor := sumReports(t, res)
			if count != acked || xor != wantXor {
				t.Fatalf("delivered count/xor = %d/%x, want %d/%x (zero loss)",
					count, xor, acked, wantXor)
			}
		})
	}
}

// TestDistServeDirectScheme pins the Direct scheme's serve path across the
// process boundary: nothing aggregates (no ingress buffers exist), every
// cross-process event ships as its own wire message, and the drain account
// still balances. Regression: ingesting toward a remote destination under
// Direct used to index the nil ingress-buffer slice and panic the frontend.
func TestDistServeDirectScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	srv, _ := startDistServe(t, transport.Socket, core.Direct)
	c, err := serve.Dial(srv.Addr(), serve.ClientConfig{Window: 256, Batch: 16})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const N = 2000
	var wantXor uint64
	for n := 0; n < N; n++ {
		v := uint64(7)<<48 | uint64(n)
		if err := c.Send(uint32(n)%4, v); err != nil {
			t.Fatalf("send: %v", err)
		}
		wantXor ^= v
	}
	c.Flush()
	if _, err := c.WaitAcked(N); err != nil {
		t.Fatalf("acks: %v", err)
	}
	res, err := srv.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	n, err := c.WaitDrained()
	if err != nil || n != N {
		t.Fatalf("drained %d (%v), want %d", n, err, N)
	}
	c.Close()
	count, xor := sumReports(t, res)
	if count != N || xor != wantXor {
		t.Fatalf("delivered count/xor = %d/%x, want %d/%x", count, xor, N, wantXor)
	}
}

// TestDistServeChaosKill pins the failure path end to end: a worker process
// killed mid-stream surfaces to every connected client as a typed
// *dist.PeerFailureError naming the dead proc, Drain returns the same failure,
// and nothing hangs.
func TestDistServeChaosKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	srv, _ := startDistServe(t, transport.Socket, core.WW)

	c, err := serve.Dial(srv.Addr(), serve.ClientConfig{Window: 1024, Batch: 16})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// Stream continuously until the failure propagates back as a send error.
	sendErr := make(chan error, 1)
	go func() {
		for n := uint64(0); ; n++ {
			if err := c.Send(uint32(n)%4, n); err != nil {
				sendErr <- err
				return
			}
			if n%16 == 15 {
				c.Flush()
			}
		}
	}()
	// Let the stream establish (acks flowing through both processes), then
	// kill the non-frontend worker.
	deadline := time.Now().Add(30 * time.Second)
	for c.Acked() < 256 {
		if time.Now().After(deadline) {
			t.Fatalf("stream never established: acked=%d err=%v", c.Acked(), c.Err())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.KillWorker(1); err != nil {
		t.Fatalf("kill worker: %v", err)
	}

	checkTyped := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: no error after worker kill", what)
		}
		var pf *dist.PeerFailureError
		if !errors.As(err, &pf) {
			t.Fatalf("%s: err %T %v, want *dist.PeerFailureError", what, err, err)
		}
		if pf.Proc != 1 {
			t.Fatalf("%s: failure attributed to proc %d, want 1", what, pf.Proc)
		}
		if !errors.Is(err, dist.ErrPeerDied) {
			t.Fatalf("%s: err %v does not wrap ErrPeerDied", what, err)
		}
	}

	// The blocked/streaming client unwedges with the typed failure...
	select {
	case err := <-sendErr:
		checkTyped("client send", err)
	case <-time.After(30 * time.Second):
		t.Fatal("client send loop still blocked 30s after worker kill")
	}
	if _, err := c.WaitDrained(); err == nil {
		t.Fatal("killed run reported a clean drain to the client")
	}
	c.Close()

	// ...and so does the coordinator-side Drain.
	_, err = srv.Drain()
	checkTyped("drain", err)
}
