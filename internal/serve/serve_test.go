package serve_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tramlib/internal/cluster"
	"tramlib/internal/core"
	"tramlib/internal/dist"
	"tramlib/internal/rt"
	"tramlib/internal/serve"
	"tramlib/internal/stats"
)

// testServer bundles a serve-mode runtime and its frontend.
type testServer struct {
	rtm  *rt.Runtime
	fe   *serve.Frontend
	resC chan rt.Result
}

// startServer runs a whole-topology serve runtime behind a frontend. deliver
// observes every delivered value.
func startServer(t *testing.T, scheme core.Scheme, ingressCap int, deliver func(uint64), metrics bool) *testServer {
	t.Helper()
	cfg := rt.Config{
		Topo:          cluster.SMP(1, 2, 2),
		Scheme:        scheme,
		BufferItems:   64,
		FlushDeadline: 200 * time.Microsecond,
		ChunkSize:     64,
		Serve:         true,
		IngressCap:    ingressCap,
	}
	hist := stats.NewAtomicHist()
	rtm := rt.New(cfg, func(ctx *rt.Ctx, v uint64) {
		deliver(v)
		ctx.Contribute(1)
	}, func(cluster.WorkerID) (int, rt.KernelFunc) { return 0, nil })
	rtm.SetFlushHist(hist)
	resC := make(chan rt.Result, 1)
	go func() { resC <- rtm.Run() }()

	fcfg := serve.Config{
		Listen: "127.0.0.1:0",
		Inj:    rtm,
		Metrics: &serve.MetricsSource{
			Scheme:    scheme.String(),
			Counters:  rtm.Counters,
			FlushHist: hist,
		},
	}
	if metrics {
		fcfg.MetricsListen = "127.0.0.1:0"
	}
	fe, err := serve.New(fcfg)
	if err != nil {
		rtm.Stop()
		t.Fatalf("serve.New: %v", err)
	}
	return &testServer{rtm: rtm, fe: fe, resC: resC}
}

// drain performs the full zero-loss sequence and returns the run result.
func (s *testServer) drain(t *testing.T) rt.Result {
	t.Helper()
	if err := s.fe.Drain(); err != nil {
		t.Fatalf("frontend drain: %v", err)
	}
	if err := s.rtm.WaitQuiet(nil); err != nil {
		t.Fatalf("WaitQuiet: %v", err)
	}
	s.rtm.Stop()
	s.fe.Close()
	return <-s.resC
}

// TestDrainZeroLoss pins the drain guarantee on the Real (in-process) path
// for every scheme: concurrent clients stream unique values, drain lands
// mid-stream, and afterwards the delivered multiset exactly matches the acked
// events (count and XOR of unique IDs).
func TestDrainZeroLoss(t *testing.T) {
	for _, scheme := range core.Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			var count atomic.Int64
			var xor atomic.Uint64
			s := startServer(t, scheme, 128, func(v uint64) {
				count.Add(1)
				for {
					old := xor.Load()
					if xor.CompareAndSwap(old, old^v) {
						break
					}
				}
			}, false)

			const conns = 4
			var sentXor [conns]uint64
			var sentUpTo [conns]int64
			clients := make([]*serve.Client, conns)
			for i := range clients {
				c, err := serve.Dial(s.fe.Addr(), serve.ClientConfig{Window: 512, Batch: 32})
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				clients[i] = c
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *serve.Client) {
					defer wg.Done()
					for n := int64(0); ; n++ {
						select {
						case <-stop:
							c.Flush()
							return
						default:
						}
						v := uint64(i+1)<<48 | uint64(n)
						if err := c.Send(uint32(n)%4, v); err != nil {
							return // drain raced our send; acked set governs
						}
						sentXor[i] ^= v
						sentUpTo[i] = n + 1
					}
				}(i, c)
			}
			time.Sleep(20 * time.Millisecond) // let the stream establish
			close(stop)
			wg.Wait()
			// The ack is the guarantee's unit: drain drops frames still in
			// socket buffers (unacked, reported by the final count), so wait
			// until the whole stream is admitted before draining to pin the
			// strongest claim — acked == sent == delivered.
			for i, c := range clients {
				if _, err := c.WaitAcked(sentUpTo[i]); err != nil {
					t.Fatalf("conn %d acks: %v", i, err)
				}
			}

			res := s.drain(t)

			var acked int64
			for i, c := range clients {
				n, err := c.WaitDrained()
				if err != nil {
					t.Fatalf("conn %d drained err: %v", i, err)
				}
				if n != sentUpTo[i] {
					t.Fatalf("conn %d acked %d of %d sent", i, n, sentUpTo[i])
				}
				acked += n
				c.Close()
			}
			wantXor := uint64(0)
			for _, x := range sentXor {
				wantXor ^= x
			}
			if count.Load() != acked || xor.Load() != wantXor {
				t.Fatalf("delivered count/xor = %d/%x, want %d/%x (zero loss)",
					count.Load(), xor.Load(), acked, wantXor)
			}
			if res.Delivered != acked {
				t.Fatalf("runtime delivered %d, want %d", res.Delivered, acked)
			}
		})
	}
}

// TestBackpressureStalledConsumer pins the bounded-memory property at the
// service level: with worker 0 wedged, a connection streaming to it stalls
// with its unacked window full while another connection to live workers keeps
// flowing; ingress occupancy never exceeds the cap.
func TestBackpressureStalledConsumer(t *testing.T) {
	const ingressCap = 32
	release := make(chan struct{})
	var wedgeOnce sync.Once
	var live atomic.Int64
	s := startServer(t, core.Direct, ingressCap, func(v uint64) {
		if v>>63 == 1 {
			wedgeOnce.Do(func() { <-release })
			return
		}
		live.Add(1)
	}, false)

	stalled, err := serve.Dial(s.fe.Addr(), serve.ClientConfig{Window: 64, Batch: 8})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// Saturate worker 0: the first event wedges it, the rest pile into its
	// admission window, the handler blocks in Ingest, and finally the
	// client's own unacked window fills — Send blocks. The sender goroutine
	// stays wedged until the drain resolves it (Send then returns
	// ErrDrained, its clean exit).
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for n := int64(0); ; n++ {
			if err := stalled.Send(0, 1<<63|uint64(n)); err != nil {
				return
			}
			stalled.Flush()
		}
	}()
	windowFull := func() bool { return stalled.Sent()-stalled.Acked() >= 64 }
	deadline := time.Now().Add(10 * time.Second)
	for !windowFull() {
		if time.Now().After(deadline) {
			t.Fatalf("backpressure never reached the client: sent=%d acked=%d",
				stalled.Sent(), stalled.Acked())
		}
		time.Sleep(time.Millisecond)
	}

	// The wedged destination's server-side occupancy is bounded by the cap.
	if used, capacity := s.rtm.IngressOccupancy(0); used > capacity || capacity != ingressCap {
		t.Fatalf("wedged occupancy %d/%d exceeds cap %d", used, capacity, ingressCap)
	}

	// A second connection to live workers flows the whole time.
	flowing, err := serve.Dial(s.fe.Addr(), serve.ClientConfig{Window: 512, Batch: 32})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const liveEvents = 5_000
	for n := 0; n < liveEvents; n++ {
		if err := flowing.Send(1+uint32(n)%3, uint64(n)); err != nil {
			t.Fatalf("live send: %v", err)
		}
	}
	flowing.Flush()
	if _, err := flowing.WaitAcked(liveEvents); err != nil {
		t.Fatalf("live acks: %v", err)
	}

	close(release)
	res := s.drain(t)
	sn, err := stalled.WaitDrained()
	if err != nil {
		t.Fatalf("stalled drained: %v", err)
	}
	fn, err := flowing.WaitDrained()
	if err != nil {
		t.Fatalf("flowing drained: %v", err)
	}
	<-senderDone
	if fn != liveEvents {
		t.Fatalf("flowing acked %d, want %d", fn, liveEvents)
	}
	if sn > stalled.Sent() {
		t.Fatalf("stalled acked %d > sent %d", sn, stalled.Sent())
	}
	if res.Delivered != sn+fn {
		t.Fatalf("delivered %d, want acked total %d", res.Delivered, sn+fn)
	}
	stalled.Close()
	flowing.Close()
}

// TestLoadGen runs the load generator against a live server and checks the
// report's accounting, then scrapes the metrics endpoint.
func TestLoadGen(t *testing.T) {
	var count atomic.Int64
	s := startServer(t, core.PP, 256, func(uint64) { count.Add(1) }, true)

	rep, err := serve.Run(serve.LoadConfig{
		Addr:            s.fe.Addr(),
		Clients:         1_000,
		Conns:           8,
		EventsPerClient: 20,
		Workers:         4,
		Seed:            42,
	})
	if err != nil {
		t.Fatalf("load run: %v", err)
	}
	const total = 1_000 * 20
	if rep.Sent != total || rep.Acked != total {
		t.Fatalf("sent/acked = %d/%d, want %d", rep.Sent, rep.Acked, total)
	}
	if rep.Achieved <= 0 {
		t.Fatalf("achieved eps = %v, want > 0", rep.Achieved)
	}

	// The scrape endpoint reports the traffic.
	resp, err := http.Get("http://" + s.fe.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, fmt.Sprintf("tramserve_admitted_total %d", total)) {
		t.Fatalf("scrape missing admitted_total %d:\n%s", total, text)
	}
	for _, metric := range []string{
		"tramserve_admitted_per_second",
		"tramserve_rt_delivered_total",
		"tramserve_ingress_cap",
		"tramserve_scheme",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("scrape missing %s:\n%s", metric, text)
		}
	}

	s.drain(t)
	if count.Load() != total {
		t.Fatalf("delivered %d, want %d", count.Load(), total)
	}
}

// TestMetricsFirstScrapeWindow pins the first-scrape window alignment:
// flush-latency samples observed before the metrics server started belong to
// no scrape window — the server primes its window at startup, so the first
// scrape's quantiles and its admitted_per_second rate cover the same
// interval instead of quantiles summarizing the whole pre-server history.
func TestMetricsFirstScrapeWindow(t *testing.T) {
	hist := stats.NewAtomicHist()
	for i := 0; i < 50; i++ {
		hist.Observe(int64(1_000_000 + i)) // boot-time flush history
	}
	rtm := rt.New(rt.Config{
		Topo:          cluster.SMP(1, 2, 2),
		Scheme:        core.PP,
		BufferItems:   64,
		FlushDeadline: 200 * time.Microsecond,
		ChunkSize:     64,
		Serve:         true,
		IngressCap:    64,
	}, func(ctx *rt.Ctx, v uint64) { ctx.Contribute(1) },
		func(cluster.WorkerID) (int, rt.KernelFunc) { return 0, nil })
	rtm.SetFlushHist(hist)
	resC := make(chan rt.Result, 1)
	go func() { resC <- rtm.Run() }()
	fe, err := serve.New(serve.Config{
		Listen:        "127.0.0.1:0",
		MetricsListen: "127.0.0.1:0",
		Inj:           rtm,
		Metrics: &serve.MetricsSource{
			Scheme:    core.PP.String(),
			Counters:  rtm.Counters,
			FlushHist: hist,
		},
	})
	if err != nil {
		rtm.Stop()
		t.Fatalf("serve.New: %v", err)
	}
	s := &testServer{rtm: rtm, fe: fe, resC: resC}

	scrape := func() string {
		resp, err := http.Get("http://" + fe.MetricsAddr() + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}
	if text := scrape(); !strings.Contains(text, "tramserve_flush_latency_window_count 0\n") {
		t.Fatalf("first scrape window includes pre-server history:\n%s", text)
	}
	// Samples observed after the first scrape are the second window's.
	for _, v := range []int64{500, 700, 900} {
		hist.Observe(v)
	}
	if text := scrape(); !strings.Contains(text, "tramserve_flush_latency_window_count 3\n") {
		t.Fatalf("second scrape window should hold exactly the 3 new samples:\n%s", text)
	}
	s.drain(t)
}

// TestAbortSurfacesTypedError pins the failure path: Abort sends every
// connected client an OpFail that surfaces as a typed *dist.PeerFailureError,
// and blocked senders unwedge (no hang).
func TestAbortSurfacesTypedError(t *testing.T) {
	s := startServer(t, core.WW, 16, func(uint64) {}, false)
	c, err := serve.Dial(s.fe.Addr(), serve.ClientConfig{Window: 64, Batch: 4})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for n := 0; n < 32; n++ {
		if err := c.Send(uint32(n)%4, uint64(n)); err != nil {
			break
		}
	}
	c.Flush()
	s.fe.Abort(1, "run", "worker 1 died")

	_, err = c.WaitDrained()
	if err == nil {
		t.Fatal("aborted connection reported a clean drain")
	}
	var typed *dist.PeerFailureError
	if !errors.As(err, &typed) {
		t.Fatalf("err %T %v, want *dist.PeerFailureError", err, err)
	}
	if typed.Proc != 1 || typed.Phase != "run" {
		t.Fatalf("failure attributed to proc=%d phase=%q, want 1/run", typed.Proc, typed.Phase)
	}
	if !errors.Is(err, dist.ErrPeerDied) {
		t.Fatalf("err %v does not wrap ErrPeerDied", err)
	}
	c.Close()
	s.rtm.Stop()
	s.fe.Close()
	<-s.resC
}
