module tramlib

go 1.24
