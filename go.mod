module tramlib

go 1.23
