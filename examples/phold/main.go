// PHOLD example: synthetic optimistic parallel discrete event simulation,
// comparing how aggregation schemes affect rejected (out-of-order) events —
// the arrivals a real Time Warp engine would pay rollback cascades for.
//
// Expected shape (Fig. 18): PP rejects noticeably fewer events than WW/WPs
// because its shared process-level buffers fill (and therefore flush) fastest,
// minimizing item latency; WW's total time is several times worse because
// every flush timeout sprays hundreds of near-empty per-worker buffers.
//
// Run with:
//
//	go run ./examples/phold [-events 4194304] [-procs 2]
package main

import (
	"flag"
	"fmt"

	"tramlib/internal/apps/phold"
	"tramlib/internal/cluster"
	"tramlib/internal/core"
	"tramlib/internal/stats"
)

func main() {
	events := flag.Int64("events", 1<<22, "event budget")
	procs := flag.Int("procs", 2, "number of processes (32 workers each)")
	flag.Parse()

	topo := cluster.SMP(*procs, 1, 32)
	tb := stats.NewTable(
		fmt.Sprintf("PHOLD, %d events, %v", *events, topo),
		"scheme", "time", "rejected", "rejected%", "msgs", "items/msg")

	for _, s := range []core.Scheme{core.WW, core.WPs, core.PP} {
		cfg := phold.DefaultConfig(topo, s)
		cfg.EventsBudget = *events
		res := phold.Run(cfg)
		tb.AddRowf(s.String(), res.Time.String(), res.Wasted,
			100*res.WastedFrac, res.RemoteMsgs,
			float64(res.RemoteRecv)/float64(res.RemoteMsgs))
	}
	fmt.Println(tb.String())
	fmt.Println("rejected = events arriving behind their LP's committed clock (rollback triggers)")
}
