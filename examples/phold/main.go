// PHOLD example: synthetic optimistic parallel discrete event simulation,
// comparing how aggregation schemes affect rejected (out-of-order) events —
// the arrivals a real Time Warp engine would pay rollback cascades for.
//
// The engine is written once against the public tram API; -backend picks the
// execution engine. On "real" the events genuinely race through the
// lock-free buffers, so the rejected count reflects live host scheduling; on
// "dist" each simulated process is a real OS process and remote events cross
// genuine socket hops (the event budget is split evenly per process).
//
// Expected shape (Fig. 18): PP rejects noticeably fewer events than WW/WPs
// because its shared process-level buffers fill (and therefore flush)
// fastest, minimizing item latency; WW's total time is several times worse
// because every flush timeout sprays hundreds of near-empty per-worker
// buffers.
//
// Run with:
//
//	go run ./examples/phold [-events 4194304] [-procs 2] [-backend sim]
package main

import (
	"flag"
	"fmt"
	"os"

	"tramlib/internal/apps/phold"
	"tramlib/internal/stats"
	"tramlib/tram"
)

func main() {
	tram.Main() // dist worker processes run their share here and exit
	events := flag.Int64("events", 1<<22, "event budget")
	procs := flag.Int("procs", 2, "number of processes (32 workers each)")
	backend := flag.String("backend", "sim", "execution backend: sim, real, or dist")
	flag.Parse()

	var b tram.Backend
	switch *backend {
	case "sim":
		b = tram.Sim
	case "real":
		b = tram.Real
	case "dist":
		b = tram.Dist // each of the -procs processes becomes a real OS process
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want sim, real, or dist)\n", *backend)
		os.Exit(2)
	}

	topo := tram.SMP(*procs, 1, 32)
	tb := stats.NewTable(
		fmt.Sprintf("PHOLD, %d events, %v, backend=%v", *events, topo, b),
		"scheme", "time", "rejected", "rejected%", "batches", "items/batch")

	for _, s := range []tram.Scheme{tram.WW, tram.WPs, tram.PP} {
		cfg := phold.DefaultConfig(topo, s)
		cfg.EventsBudget = *events
		res := phold.RunOn(b, cfg)
		tb.AddRowf(s.String(), res.Time.String(), res.Wasted,
			100*res.WastedFrac, res.M.Batches,
			float64(res.RemoteRecv)/float64(res.M.Batches))
	}
	fmt.Println(tb.String())
	fmt.Println("rejected = events arriving behind their LP's committed clock (rollback triggers)")
}
