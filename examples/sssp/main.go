// SSSP example: speculative single-source shortest paths on an RMAT graph,
// comparing aggregation schemes on the paper's two metrics — total time and
// wasted updates (stale distance updates that arrive after a better distance
// is already known; §III-D).
//
// The solver is written once against the public tram API; -backend picks the
// execution engine: "sim" (deterministic virtual time), "real" (goroutines,
// measured wall-clock), "dist" (each process of the topology a real OS
// process; the graph is regenerated deterministically in every worker), or
// "both" (sim + real). On the concurrent backends speculation races for
// real, so wasted counts vary run to run — the distances still converge.
//
// Expected shape (Figs. 14–15): wasted updates PP < WPs < WW, because lower
// item latency means fewer stale updates in flight.
//
// Run with:
//
//	go run ./examples/sssp [-scale 16] [-deg 8] [-backend sim]
package main

import (
	"flag"
	"fmt"
	"os"

	"tramlib/internal/apps/sssp"
	"tramlib/internal/stats"
	"tramlib/tram"
)

func main() {
	tram.Main() // dist worker processes run their share here and exit
	scale := flag.Int("scale", 16, "RMAT scale (2^scale vertices)")
	deg := flag.Int("deg", 8, "average degree")
	seed := flag.Uint64("seed", 7, "graph seed")
	backend := flag.String("backend", "sim", "execution backend: sim, real, dist, or both")
	flag.Parse()

	var backends []tram.Backend
	switch *backend {
	case "sim":
		backends = []tram.Backend{tram.Sim}
	case "real":
		backends = []tram.Backend{tram.Real}
	case "dist":
		backends = []tram.Backend{tram.Dist}
	case "both":
		backends = []tram.Backend{tram.Sim, tram.Real}
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want sim, real, dist, or both)\n", *backend)
		os.Exit(2)
	}

	fmt.Printf("generating RMAT graph: 2^%d vertices, avg degree %d...\n", *scale, *deg)
	recipe := sssp.Recipe{Kind: "rmat", Scale: *scale, AvgDeg: *deg, Seed: *seed}
	g, err := recipe.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph generation failed:", err)
		os.Exit(1)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "graph generation failed:", err)
		os.Exit(1)
	}

	topo := tram.SMP(2, 4, 8) // 2 nodes x 4 procs x 8 workers
	for _, b := range backends {
		tb := stats.NewTable(
			fmt.Sprintf("Speculative SSSP on RMAT-%d (%d edges), %v, backend=%v",
				*scale, g.Edges(), topo, b),
			"scheme", "time", "wasted", "useful", "wasted/1k", "batches", "reached")
		for _, s := range tram.Schemes()[1:] {
			cfg := sssp.DefaultConfig(topo, s, g)
			cfg.Recipe = &recipe // lets dist workers regenerate the graph
			res := sssp.RunOn(b, cfg)
			tb.AddRowf(s.String(), res.Time.String(), res.Wasted, res.Useful,
				res.WastedNorm, res.M.Batches, res.Reached)
		}
		fmt.Println(tb.String())
	}
	fmt.Println("lower wasted/1k = fewer stale speculative updates = less wasted work")
}
