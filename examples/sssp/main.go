// SSSP example: speculative single-source shortest paths on an RMAT graph,
// comparing aggregation schemes on the paper's two metrics — total time and
// wasted updates (stale distance updates that arrive after a better distance
// is already known; §III-D).
//
// Expected shape (Figs. 14–15): wasted updates PP < WPs < WW, because lower
// item latency means fewer stale updates in flight.
//
// Run with:
//
//	go run ./examples/sssp [-scale 16] [-deg 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"tramlib/internal/apps/sssp"
	"tramlib/internal/cluster"
	"tramlib/internal/core"
	"tramlib/internal/graph"
	"tramlib/internal/stats"
)

func main() {
	scale := flag.Int("scale", 16, "RMAT scale (2^scale vertices)")
	deg := flag.Int("deg", 8, "average degree")
	seed := flag.Uint64("seed", 7, "graph seed")
	flag.Parse()

	fmt.Printf("generating RMAT graph: 2^%d vertices, avg degree %d...\n", *scale, *deg)
	g := graph.GenRMAT(*scale, *deg, *seed)
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "graph generation failed:", err)
		os.Exit(1)
	}

	topo := cluster.SMP(2, 4, 8) // 2 nodes x 4 procs x 8 workers
	tb := stats.NewTable(
		fmt.Sprintf("Speculative SSSP on RMAT-%d (%d edges), %v", *scale, g.Edges(), topo),
		"scheme", "time", "wasted", "useful", "wasted/1k", "msgs", "reached")

	for _, s := range []core.Scheme{core.WW, core.WPs, core.WsP, core.PP} {
		cfg := sssp.DefaultConfig(topo, s, g)
		res := sssp.Run(cfg)
		tb.AddRowf(s.String(), res.Time.String(), res.Wasted, res.Useful,
			res.WastedNorm, res.RemoteMsgs, res.Reached)
	}
	fmt.Println(tb.String())
	fmt.Println("lower wasted/1k = fewer stale speculative updates = less wasted work")
}
