// Liveagg: a real-concurrency (wall-clock, goroutine) demonstration of the
// paper's core trade-off using the internal/shmem buffers.
//
// N producer goroutines ("workers of one process") stream small items toward
// D destinations ("destination processes"). Three configurations mirror the
// paper's schemes in miniature:
//
//	direct  one channel send per item              (no aggregation)
//	sp      per-producer, per-destination SPBuffer (WPs-style private buffers)
//	mp      per-destination shared MPBuffer        (PP-style shared buffers,
//	        atomic claim/seal across producers)
//
// The per-item cost of a channel send plays the role of the per-message α:
// batching amortizes it. The shared MP buffers fill D× faster than each
// producer's private buffer (lower item latency — the paper's Fig. 12
// ordering), at the price of atomic contention, which this example measures
// for real.
//
// Run with:
//
//	go run ./examples/liveagg [-items 2000000] [-producers 8] [-batch 1024] [-dests 8]
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"tramlib/internal/rng"
	"tramlib/internal/shmem"
	"tramlib/internal/stats"
)

func main() {
	items := flag.Int("items", 2_000_000, "items per producer")
	producers := flag.Int("producers", 8, "producer goroutines")
	batch := flag.Int("batch", 1024, "aggregation buffer capacity")
	dests := flag.Int("dests", 8, "destination count (buffers per producer / shared buffers)")
	flag.Parse()

	total := int64(*items) * int64(*producers)
	tb := stats.NewTable(
		fmt.Sprintf("Live aggregation: %d producers x %d items over %d destinations, batch=%d",
			*producers, *items, *dests, *batch),
		"mode", "wall_time", "items/us", "channel_sends", "mean_batch")

	for _, mode := range []string{"direct", "sp", "mp"} {
		elapsed, sends := run(mode, *producers, *items, *batch, *dests)
		tb.AddRowf(mode, elapsed.Round(time.Millisecond).String(),
			float64(total)/float64(elapsed.Microseconds()), sends,
			float64(total)/float64(sends))
	}
	fmt.Println(tb.String())
	fmt.Println("direct pays one channel op per item; sp/mp amortize it over a batch.")
	fmt.Println("mp shares each destination buffer across all producers (atomic claim/seal),")
	fmt.Println("so its buffers fill ~producers x faster: fresher batches at equal sizes.")
}

// run streams items through the chosen mode and returns the wall time and the
// number of channel sends the consumer saw.
func run(mode string, producers, items, batch, dests int) (time.Duration, int64) {
	ch := make(chan []uint64, 4096)
	var consumed, sends int64
	done := make(chan struct{})
	go func() {
		for b := range ch {
			sends++
			consumed += int64(len(b))
		}
		close(done)
	}()

	var wg sync.WaitGroup
	start := time.Now()
	switch mode {
	case "direct":
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < items; i++ {
					ch <- []uint64{uint64(i)}
				}
			}()
		}
		wg.Wait()

	case "sp":
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rng.NewStream(11, p)
				bufs := make([]*shmem.SPBuffer[uint64], dests)
				for d := range bufs {
					bufs[d] = shmem.NewSPBuffer(batch, func(b shmem.Batch[uint64]) { ch <- b.Items })
				}
				for i := 0; i < items; i++ {
					bufs[r.Intn(dests)].Push(uint64(i))
				}
				for _, b := range bufs {
					b.Flush()
				}
			}()
		}
		wg.Wait()

	case "mp":
		bufs := make([]*shmem.MPBuffer[uint64], dests)
		for d := range bufs {
			bufs[d] = shmem.NewMPBuffer(batch, func(b shmem.Batch[uint64]) { ch <- b.Items })
		}
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rng.NewStream(11, p)
				for i := 0; i < items; i++ {
					bufs[r.Intn(dests)].Push(uint64(i))
				}
			}()
		}
		wg.Wait()
		for _, b := range bufs {
			b.Flush()
		}
	}
	close(ch)
	<-done
	elapsed := time.Since(start)

	if consumed != int64(producers)*int64(items) {
		panic(fmt.Sprintf("%s: consumed %d of %d items", mode, consumed, int64(producers)*int64(items)))
	}
	return elapsed, sends
}
