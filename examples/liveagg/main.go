// Liveagg: a wall-clock demonstration of the paper's core trade-off, driven
// through the public tram API on the concurrent backends — like sssp and
// phold it sweeps every scheme on the Real backend (goroutines in one
// address space) and, with -backend dist, across real OS processes.
//
// Every worker streams small items to uniformly random destinations; the
// configured scheme decides how they are batched on the way:
//
//	Direct  one inbox delivery per item                 (no aggregation)
//	WW/WPs/WsP  private single-producer buffers         (per worker)
//	PP      shared per-process buffers, atomic claim/seal across workers
//
// The per-item cost of an inbox handoff plays the role of the per-message α:
// batching amortizes it. PP's shared buffers fill workers-per-process times
// faster than each worker's private buffer (lower item latency — the paper's
// Fig. 12 ordering), at the price of atomic contention, which this example
// measures for real. On the Dist backend the process boundary is a real one,
// and -transport picks what crossing it costs: wire-framed Unix sockets,
// the mmap'd shared-memory rings of same-node peers, or loopback TCP
// streams (the same link kind a multi-machine run uses; see docs/DEPLOY.md).
//
// Run with:
//
//	go run ./examples/liveagg [-items 2000000] [-batch 1024] [-procs 2] [-workers 4]
//	go run ./examples/liveagg -backend dist [-transport shm]
//	go run ./examples/liveagg -backend both     # real then dist
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tramlib/internal/rng"
	"tramlib/internal/stats"
	"tramlib/tram"
)

// distName registers the stream kernel for the Dist backend's worker
// processes (they rebuild it from the JSON-encoded params below).
const distName = "liveagg"

// params is everything a worker process needs to reproduce the exact run
// configuration and kernel the coordinator launched.
type params struct {
	Items   int         `json:"items"`
	Batch   int         `json:"batch"`
	Procs   int         `json:"procs"`
	Workers int         `json:"workers"`
	Scheme  tram.Scheme `json:"scheme"`
}

// build constructs the run configuration and kernel from params — once in
// the coordinating process, once in every Dist worker (the handshake's
// config digest verifies both derivations agree).
func (p params) build() (tram.Config, tram.App[uint64]) {
	topo := tram.SMP(1, p.Procs, p.Workers)
	W := topo.TotalWorkers()
	cfg := tram.DefaultConfig(topo, p.Scheme)
	cfg.BufferItems = p.Batch
	lib := tram.U64()
	return cfg, tram.App[uint64]{
		Deliver: func(ctx tram.Ctx, item uint64) { ctx.Contribute(1) },
		Spawn: func(w tram.WorkerID) (int, tram.KernelFunc) {
			r := rng.NewStream(11, int(w))
			return p.Items, func(ctx tram.Ctx, _ int) {
				lib.Insert(ctx, tram.WorkerID(r.Intn(W)), r.Uint64())
			}
		},
		FlushOnDone: true,
	}
}

func init() {
	tram.RegisterDist(distName, func(raw []byte, _ tram.ProcID) (tram.DistApp, error) {
		var p params
		if err := json.Unmarshal(raw, &p); err != nil {
			return tram.DistApp{}, err
		}
		cfg, app := p.build()
		return tram.BindDist(tram.U64(), cfg, app, nil)
	})
}

func main() {
	tram.Main() // dist worker processes run their share here and exit
	items := flag.Int("items", 2_000_000, "items per worker")
	batch := flag.Int("batch", 1024, "aggregation buffer capacity")
	procs := flag.Int("procs", 2, "processes")
	workers := flag.Int("workers", 4, "workers per process")
	backend := flag.String("backend", "real", "execution backend: real, dist, or both")
	transport := flag.String("transport", "socket", "dist peer data plane: socket, shm, or tcp")
	flag.Parse()

	var backends []tram.Backend
	switch *backend {
	case "real":
		backends = []tram.Backend{tram.Real}
	case "dist":
		backends = []tram.Backend{tram.Dist}
	case "both":
		backends = []tram.Backend{tram.Real, tram.Dist}
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want real, dist, or both)\n", *backend)
		os.Exit(2)
	}
	switch *transport {
	case "socket", "shm", "tcp":
	default:
		fmt.Fprintf(os.Stderr, "unknown -transport %q (want socket, shm, or tcp)\n", *transport)
		os.Exit(2)
	}

	for _, b := range backends {
		title := fmt.Sprintf("Live aggregation on %v: %d items/worker, batch=%d, backend=%v",
			tram.SMP(1, *procs, *workers), *items, *batch, b)
		if tram.IsDist(b) {
			title += fmt.Sprintf(" (%s transport)", *transport)
		}
		tb := stats.NewTable(title,
			"scheme", "wall_time", "items/us", "batches", "mean_batch", "deadline_flush")

		for _, s := range tram.Schemes() {
			p := params{Items: *items, Batch: *batch, Procs: *procs, Workers: *workers, Scheme: s}
			cfg, app := p.build()
			if tram.IsDist(b) {
				raw, err := json.Marshal(p)
				if err != nil {
					panic(err)
				}
				cfg.Dist.App = distName
				cfg.Dist.Params = raw
				cfg.Dist.Transport = tram.DistTransport(*transport)
			}
			m, err := tram.U64().Run(b, cfg, app)
			if err != nil {
				panic(err)
			}
			total := int64(*items) * int64(*procs) * int64(*workers)
			if m.Reduced != total {
				panic(fmt.Sprintf("%v: delivered %d of %d items", s, m.Reduced, total))
			}
			meanBatch := 0.0
			if m.Batches > 0 {
				meanBatch = float64(m.Delivered-m.LocalDirect) / float64(m.Batches)
			}
			tb.AddRowf(s.String(), m.Wall.Round(time.Millisecond).String(),
				float64(total)/float64(m.Wall.Microseconds()), m.Batches, meanBatch,
				m.DeadlineFlushes)
		}
		fmt.Println(tb.String())
	}
	fmt.Println("Direct pays one inbox handoff per item; the schemes amortize it over a batch.")
	fmt.Println("PP shares each destination buffer across the process's workers (atomic")
	fmt.Println("claim/seal), so its buffers fill ~workers x faster: fresher batches at equal g.")
}
