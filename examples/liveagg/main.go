// Liveagg: a real-concurrency (wall-clock) demonstration of the paper's core
// trade-off, driven through the public tram API on the Real backend.
//
// Every worker streams small items to uniformly random destinations; the
// configured scheme decides how they are batched on the way:
//
//	Direct  one inbox delivery per item                 (no aggregation)
//	WW/WPs/WsP  private single-producer buffers         (per worker)
//	PP      shared per-process buffers, atomic claim/seal across workers
//
// The per-item cost of an inbox handoff plays the role of the per-message α:
// batching amortizes it. PP's shared buffers fill workers-per-process times
// faster than each worker's private buffer (lower item latency — the paper's
// Fig. 12 ordering), at the price of atomic contention, which this example
// measures for real.
//
// Run with:
//
//	go run ./examples/liveagg [-items 2000000] [-batch 1024] [-procs 2] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"time"

	"tramlib/internal/rng"
	"tramlib/internal/stats"
	"tramlib/tram"
)

func main() {
	items := flag.Int("items", 2_000_000, "items per worker")
	batch := flag.Int("batch", 1024, "aggregation buffer capacity")
	procs := flag.Int("procs", 2, "processes")
	workers := flag.Int("workers", 4, "workers per process")
	flag.Parse()

	topo := tram.SMP(1, *procs, *workers)
	W := topo.TotalWorkers()
	total := int64(*items) * int64(W)

	tb := stats.NewTable(
		fmt.Sprintf("Live aggregation on %v: %d items/worker, batch=%d", topo, *items, *batch),
		"scheme", "wall_time", "items/us", "batches", "mean_batch", "deadline_flush")

	lib := tram.U64()
	for _, s := range tram.Schemes() {
		cfg := tram.DefaultConfig(topo, s)
		cfg.BufferItems = *batch
		m, err := lib.Run(tram.Real, cfg, tram.App[uint64]{
			Deliver: func(ctx tram.Ctx, item uint64) { ctx.Contribute(1) },
			Spawn: func(w tram.WorkerID) (int, tram.KernelFunc) {
				r := rng.NewStream(11, int(w))
				return *items, func(ctx tram.Ctx, _ int) {
					lib.Insert(ctx, tram.WorkerID(r.Intn(W)), r.Uint64())
				}
			},
			FlushOnDone: true,
		})
		if err != nil {
			panic(err)
		}
		if m.Reduced != total {
			panic(fmt.Sprintf("%v: delivered %d of %d items", s, m.Reduced, total))
		}
		meanBatch := 0.0
		if m.Batches > 0 {
			meanBatch = float64(m.Delivered-m.LocalDirect) / float64(m.Batches)
		}
		tb.AddRowf(s.String(), m.Wall.Round(time.Millisecond).String(),
			float64(total)/float64(m.Wall.Microseconds()), m.Batches, meanBatch,
			m.DeadlineFlushes)
	}
	fmt.Println(tb.String())
	fmt.Println("Direct pays one inbox handoff per item; the schemes amortize it over a batch.")
	fmt.Println("PP shares each destination buffer across the process's workers (atomic")
	fmt.Println("claim/seal), so its buffers fill ~workers x faster: fresher batches at equal g.")
}
