// Liveagg: the paper's latency-vs-amortization trade-off measured live,
// through the tramserve subsystem instead of a batch run. For every scheme it
// stands up the ingestion service (`tram.Lib.Serve` with the shared
// internal/apps/serveagg counter), streams events from simulated clients
// multiplexed over TCP connections (the internal/serve load generator — the
// same machinery as cmd/tramload), scrapes the live metrics endpoint
// mid-stream, then drains gracefully and verifies the zero-loss contract:
// the drained account equals the acknowledged event count exactly.
//
// The columns show what serving adds over a batch sweep: ack latency
// (p50/p99 from send to cumulative acknowledgment, i.e. admission latency
// under backpressure) next to the scheme's batching behavior (batches,
// deadline-triggered flushes). Direct pays one handoff per event; the
// aggregating schemes amortize it and the flush deadline bounds how stale a
// partial buffer may get — the knob the paper's latency-sensitive
// aggregation is about.
//
// Run with:
//
//	go run ./examples/liveagg [-clients 20000] [-conns 16] [-events 20]
//	go run ./examples/liveagg -backend dist [-transport shm]
//	go run ./examples/liveagg -backend both [-rate 500000]
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"tramlib/internal/apps/serveagg"
	"tramlib/internal/serve"
	"tramlib/internal/stats"
	"tramlib/tram"
)

func main() {
	tram.Main() // dist worker processes run their share here and exit
	clients := flag.Int("clients", 20_000, "simulated client event sources")
	conns := flag.Int("conns", 16, "TCP connections multiplexing them")
	events := flag.Int("events", 20, "events per simulated client")
	rate := flag.Float64("rate", 0, "aggregate offered events/sec (0 = unpaced)")
	procs := flag.Int("procs", 2, "processes")
	workers := flag.Int("workers", 4, "workers per process")
	deadline := flag.Duration("deadline", 200*time.Microsecond, "flush deadline bounding in-buffer latency")
	backend := flag.String("backend", "real", "serving backend: real, dist, or both")
	transport := flag.String("transport", "socket", "dist peer data plane: socket, shm, or tcp")
	flag.Parse()

	var backends []tram.Backend
	switch *backend {
	case "real":
		backends = []tram.Backend{tram.Real}
	case "dist":
		backends = []tram.Backend{tram.Dist}
	case "both":
		backends = []tram.Backend{tram.Real, tram.Dist}
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want real, dist, or both)\n", *backend)
		os.Exit(2)
	}
	switch *transport {
	case "socket", "shm", "tcp":
	default:
		fmt.Fprintf(os.Stderr, "unknown -transport %q (want socket, shm, or tcp)\n", *transport)
		os.Exit(2)
	}

	for _, b := range backends {
		title := fmt.Sprintf("Live aggregation service on %v: %d clients x %d events over %d conns, backend=%v",
			tram.SMP(1, *procs, *workers), *clients, *events, *conns, b)
		if tram.IsDist(b) {
			title += fmt.Sprintf(" (%s transport)", *transport)
		}
		tb := stats.NewTable(title,
			"scheme", "events/us", "p50_ack", "p99_ack", "batches", "deadline_flush", "drained")

		for _, s := range tram.Schemes() {
			p := serveagg.Params{
				Nodes: 1, Procs: *procs, Workers: *workers, Scheme: s,
				FlushDeadline: *deadline,
			}
			srv, in, err := serveagg.Serve(b, p, "127.0.0.1:0", "127.0.0.1:0", tram.DistTransport(*transport))
			if err != nil {
				panic(err)
			}

			// Scrape the live endpoint mid-stream, once the load is flowing.
			scraped := make(chan string, 1)
			go func(addr string) {
				time.Sleep(20 * time.Millisecond)
				resp, err := http.Get("http://" + addr + "/metrics")
				if err != nil {
					scraped <- ""
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				scraped <- string(body)
			}(srv.MetricsAddr())

			var m tram.Metrics
			rep, err := serve.Run(serve.LoadConfig{
				Addr:            srv.Addr(),
				Clients:         *clients,
				Conns:           *conns,
				EventsPerClient: *events,
				Workers:         *procs * *workers,
				Rate:            *rate,
				Seed:            11,
				Drain: func() error {
					var derr error
					m, derr = srv.Drain()
					return derr
				},
			})
			if err != nil {
				panic(err)
			}
			total, err := serveagg.Sum(m, in)
			if err != nil {
				panic(err)
			}
			if total.Count != rep.Acked {
				panic(fmt.Sprintf("%v: drained account %d != acked %d (event loss)", s, total.Count, rep.Acked))
			}
			if text := <-scraped; text != "" && !strings.Contains(text, "tramserve_admitted_total") {
				panic("metrics endpoint scraped but missing tramserve_admitted_total")
			}
			tb.AddRowf(s.String(), rep.Achieved/1e6,
				time.Duration(rep.P50).Round(time.Microsecond).String(),
				time.Duration(rep.P99).Round(time.Microsecond).String(),
				m.Batches, m.DeadlineFlushes, total.Count)
		}
		fmt.Println(tb.String())
	}
	fmt.Println("Acks return on admission; the flush deadline bounds how long an admitted event")
	fmt.Println("may sit in a partial buffer, so p99 ack latency tracks the deadline while the")
	fmt.Println("aggregating schemes amortize the per-event handoff that Direct pays in full.")
}
