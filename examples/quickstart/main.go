// Quickstart: one aggregation kernel, three execution backends.
//
// This example is the public tram API in miniature. It describes a 2-node
// SMP cluster (2 processes × 4 workers per node), defines an application —
// every worker streams random items to random destinations through a
// tram.Lib with the WPs scheme — and then runs the *same* App three times:
//
//   - on tram.Sim, the deterministic discrete-event simulator, which models
//     the cluster's network and reports virtual-time metrics;
//   - on tram.Real, the goroutine runtime over lock-free shared-memory
//     buffers, which reports measured wall-clock metrics;
//   - on tram.Dist, where each of the topology's 4 processes is a real OS
//     process (this binary re-executed) and process-crossing batches travel
//     over Unix-domain sockets.
//
// The Dist backend shows the registration pattern: because worker processes
// are fresh executions of this binary, the app is built by a named builder
// (RegisterDist + tram.Main) from serialized parameters instead of traveling
// as closures.
//
// Run with:
//
//	go run ./examples/quickstart [-items 50000] [-buffer 256] [-no-dist]
package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"tramlib/internal/rng"
	"tramlib/tram"
)

// params is everything the app needs to reconstruct itself in any process.
type params struct {
	Items  int `json:"items"`
	Buffer int `json:"buffer"`
}

// build constructs the configuration and application from params — in this
// process for Sim/Real, and in every self-exec'd worker process for Dist.
func build(p params) (tram.Config, tram.App[uint64]) {
	// 1. Describe the machine: 2 nodes, 2 processes each, 4 workers per
	//    process (plus an implicit comm thread per process in the simulator).
	topo := tram.SMP(2, 2, 4)
	W := topo.TotalWorkers()

	// 2. Configure the library: WPs scheme (per-destination-process buffers,
	//    grouped at the receiver), buffers of p.Buffer items.
	cfg := tram.DefaultConfig(topo, tram.WPs)
	cfg.BufferItems = p.Buffer

	// 3. Write the application once: a typed Lib for inserting, a Deliver
	//    that counts arrivals, and a kernel per worker. The Ctx works on
	//    every backend.
	lib := tram.U64()
	app := tram.App[uint64]{
		Deliver: func(ctx tram.Ctx, item uint64) {
			ctx.Contribute(1) // runs at the destination worker
		},
		Spawn: func(w tram.WorkerID) (int, tram.KernelFunc) {
			r := rng.NewStream(42, int(w))
			return p.Items, func(ctx tram.Ctx, _ int) {
				dst := tram.WorkerID(r.Intn(W))
				lib.Insert(ctx, dst, r.Uint64())
			}
		},
		FlushOnDone: true, // end-of-phase flush once a worker's stream ends
	}
	return cfg, app
}

// The Dist registration: worker processes look up "quickstart" by name and
// rebuild the identical app from the JSON params the coordinator passed.
func init() {
	tram.RegisterDist("quickstart", func(raw []byte, _ tram.ProcID) (tram.DistApp, error) {
		var p params
		if err := json.Unmarshal(raw, &p); err != nil {
			return tram.DistApp{}, err
		}
		cfg, app := build(p)
		return tram.BindDist(tram.U64(), cfg, app, nil)
	})
}

func main() {
	tram.Main() // dist worker processes run their share here and exit
	items := flag.Int("items", 50_000, "items streamed per worker")
	buffer := flag.Int("buffer", 256, "aggregation buffer capacity (g)")
	noDist := flag.Bool("no-dist", false, "skip the multi-process backend")
	flag.Parse()

	p := params{Items: *items, Buffer: *buffer}
	cfg, app := build(p)
	lib := tram.U64()

	// 4. Run it on every backend and compare.
	backends := []tram.Backend{tram.Sim, tram.Real}
	if !*noDist {
		backends = append(backends, tram.Dist)
	}
	fmt.Printf("topology: %v, scheme WPs, g=%d, %d items/worker\n\n", cfg.Topo, *buffer, *items)
	for _, backend := range backends {
		runCfg := cfg
		if tram.IsDist(backend) {
			// Dist runs name the registration and ship the parameters.
			raw, err := json.Marshal(p)
			if err != nil {
				panic(err)
			}
			runCfg.Dist.App = "quickstart"
			runCfg.Dist.Params = raw
		}
		m, err := lib.Run(backend, runCfg, app)
		if err != nil {
			panic(err)
		}
		clock := "wall-clock"
		if m.Virtual {
			clock = "virtual"
		}
		fmt.Printf("%-4s  time=%-12v (%s)\n", backend, m.Time, clock)
		fmt.Printf("      delivered %d of %d sent (reduction arrived at %d)\n",
			m.Delivered, m.Inserted, m.Reduced)
		meanBatch := 0.0
		if m.Batches > 0 {
			meanBatch = float64(m.Delivered-m.LocalDirect) / float64(m.Batches)
		}
		fmt.Printf("      %d aggregated batches vs %d unaggregated sends (%.1f items/batch)\n",
			m.Batches, m.Inserted, meanBatch)
		switch {
		case m.Virtual:
			fmt.Printf("      wire: %d remote messages, %d bytes, %d flush-sealed\n",
				m.RemoteMsgs, m.BytesSent, m.FlushMsgs)
		case m.Reports != nil:
			fmt.Printf("      %d OS processes; flushes: %d (of which %d by the latency deadline)\n",
				len(m.Reports), m.FlushMsgs, m.DeadlineFlushes)
		default:
			fmt.Printf("      flushes: %d (of which %d by the latency deadline)\n",
				m.FlushMsgs, m.DeadlineFlushes)
		}
		fmt.Println()
	}
	fmt.Println("same kernel, same config — only the backend changed.")
}
