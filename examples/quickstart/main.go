// Quickstart: one aggregation kernel, two execution backends.
//
// This example is the public tram API in miniature. It describes a 2-node
// SMP cluster (2 processes × 4 workers per node), defines an application —
// every worker streams random items to random destinations through a
// tram.Lib with the WPs scheme — and then runs the *same* App twice:
//
//   - on tram.Sim, the deterministic discrete-event simulator, which models
//     the cluster's network and reports virtual-time metrics;
//   - on tram.Real, the goroutine runtime over lock-free shared-memory
//     buffers, which reports measured wall-clock metrics.
//
// Run with:
//
//	go run ./examples/quickstart [-items 50000] [-buffer 256]
package main

import (
	"flag"
	"fmt"

	"tramlib/internal/rng"
	"tramlib/tram"
)

func main() {
	items := flag.Int("items", 50_000, "items streamed per worker")
	buffer := flag.Int("buffer", 256, "aggregation buffer capacity (g)")
	flag.Parse()

	// 1. Describe the machine: 2 nodes, 2 processes each, 4 workers per
	//    process (plus an implicit comm thread per process in the simulator).
	topo := tram.SMP(2, 2, 4)
	W := topo.TotalWorkers()

	// 2. Configure the library: WPs scheme (per-destination-process buffers,
	//    grouped at the receiver), buffers of `-buffer` items.
	cfg := tram.DefaultConfig(topo, tram.WPs)
	cfg.BufferItems = *buffer

	// 3. Write the application once: a typed Lib for inserting, a Deliver
	//    that counts arrivals, and a kernel per worker. The Ctx works on
	//    either backend.
	lib := tram.U64()
	app := tram.App[uint64]{
		Deliver: func(ctx tram.Ctx, item uint64) {
			ctx.Contribute(1) // runs at the destination worker
		},
		Spawn: func(w tram.WorkerID) (int, tram.KernelFunc) {
			r := rng.NewStream(42, int(w))
			return *items, func(ctx tram.Ctx, _ int) {
				dst := tram.WorkerID(r.Intn(W))
				lib.Insert(ctx, dst, r.Uint64())
			}
		},
		FlushOnDone: true, // end-of-phase flush once a worker's stream ends
	}

	// 4. Run it on both backends and compare.
	fmt.Printf("topology: %v, scheme WPs, g=%d, %d items/worker\n\n", topo, *buffer, *items)
	for _, backend := range []tram.Backend{tram.Sim, tram.Real} {
		m, err := lib.Run(backend, cfg, app)
		if err != nil {
			panic(err)
		}
		clock := "wall-clock"
		if m.Virtual {
			clock = "virtual"
		}
		fmt.Printf("%-4s  time=%-12v (%s)\n", backend, m.Time, clock)
		fmt.Printf("      delivered %d of %d sent (reduction arrived at %d)\n",
			m.Delivered, m.Inserted, m.Reduced)
		meanBatch := 0.0
		if m.Batches > 0 {
			meanBatch = float64(m.Delivered-m.LocalDirect) / float64(m.Batches)
		}
		fmt.Printf("      %d aggregated batches vs %d unaggregated sends (%.1f items/batch)\n",
			m.Batches, m.Inserted, meanBatch)
		if m.Virtual {
			fmt.Printf("      wire: %d remote messages, %d bytes, %d flush-sealed\n",
				m.RemoteMsgs, m.BytesSent, m.FlushMsgs)
		} else {
			fmt.Printf("      flushes: %d (of which %d by the latency deadline)\n",
				m.FlushMsgs, m.DeadlineFlushes)
		}
		fmt.Println()
	}
	fmt.Println("same kernel, same config — only the backend changed.")
}
