// Quickstart: aggregate fine-grained items across a simulated SMP cluster.
//
// This example builds a 2-node cluster (2 processes × 4 workers per node),
// creates a TramLib instance with the WPs scheme (per-destination-process
// buffers, grouped at the receiver), streams random 8-byte items from every
// worker, and prints the aggregation statistics — including the message
// reduction relative to sending every item individually.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tramlib/internal/charm"
	"tramlib/internal/cluster"
	"tramlib/internal/core"
	"tramlib/internal/netsim"
	"tramlib/internal/rng"
)

func main() {
	// 1. Describe the machine: 2 nodes, 2 processes each, 4 workers per
	//    process (plus an implicit comm thread per process).
	topo := cluster.SMP(2, 2, 4)

	// 2. Build the message-driven runtime over the default Delta-like
	//    network calibration.
	rt := charm.NewRuntime(topo, netsim.DefaultParams())

	// 3. Create the aggregation library: WPs scheme, buffers of 256 items.
	cfg := core.DefaultConfig(core.WPs)
	cfg.BufferItems = 256
	received := make([]int, topo.TotalWorkers())
	lib := core.New(rt, cfg, func(ctx *charm.Ctx, item uint64) {
		received[ctx.Self()]++
	})

	// 4. Every worker streams 50k items to random destinations, then
	//    flushes. The LoopDriver chunks the generation loop so sends and
	//    receives interleave, as in a real message-driven program.
	const itemsPerWorker = 50_000
	drv := charm.NewLoopDriver(rt)
	W := topo.TotalWorkers()
	for w := 0; w < W; w++ {
		r := rng.NewStream(42, w)
		drv.Spawn(cluster.WorkerID(w), itemsPerWorker, 128,
			func(ctx *charm.Ctx, i int) {
				dst := cluster.WorkerID(r.Intn(W))
				lib.Insert(ctx, dst, r.Uint64())
			},
			func(ctx *charm.Ctx) { lib.Flush(ctx) })
	}

	// 5. Run to quiescence and report.
	elapsed := rt.Run()
	total := 0
	for _, n := range received {
		total += n
	}
	fmt.Printf("topology:          %v\n", topo)
	fmt.Printf("items delivered:   %d (of %d sent)\n", total, W*itemsPerWorker)
	fmt.Printf("simulated time:    %v\n", elapsed)
	fmt.Printf("remote messages:   %d aggregated (vs %d unaggregated)\n",
		lib.M.RemoteMsgs.Value(), lib.M.Inserted.Value())
	fmt.Printf("mean items/msg:    %.1f\n",
		float64(lib.M.Delivered.Value()-lib.M.LocalDirect.Value())/float64(lib.M.RemoteMsgs.Value()+lib.M.LocalMsgs.Value()))
	fmt.Printf("wire bytes:        %d\n", lib.M.BytesSent.Value())
	fmt.Printf("flush messages:    %d (resized partial buffers)\n", lib.M.FlushMsgs.Value())
}
