// Command tramload drives load into a tramserve frontend: N simulated
// clients — each an independent event source — multiplexed over a handful of
// TCP connections (the standard way to model 10^5..10^6 fine-grained
// producers from one box), paced to an offered rate or running as fast as
// backpressure admits. It reports throughput and ack-latency quantiles as a
// JSON LoadReport (internal/serve).
//
// Two modes:
//
//	tramload -addr 127.0.0.1:7600 -workers 8     # against a running tramserve
//	tramload -self real                           # self-contained: starts the
//	                                              # server in-process, loads,
//	                                              # drains, verifies zero loss
//	tramload -self dist -procs 2 -workers 4       # same across OS processes
//
// In -self mode the run ends with the server's graceful drain and the exit
// status asserts the service contract: every acknowledged event must appear
// in the drained account (zero loss) and throughput must be nonzero — the CI
// smoke runs exactly this. Against -addr the server stays up; the run
// barriers on acknowledgments only.
//
// Usage:
//
//	tramload -self real -clients 100000 -conns 64 -events 10
//	tramload -addr :7600 -workers 8 -clients 50000 -conns 32 -events 20 -rate 200000
//	tramload -self real -json -                   # LoadReport on stdout
//	tramload -self real -adaptive -shape zipf     # skewed destinations vs the
//	                                              # adaptive flush controller
//	tramload -self real -shape burst -burst-on 2ms -burst-off 8ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tramlib/internal/apps/serveagg"
	"tramlib/internal/serve"
	"tramlib/internal/traffic"
	"tramlib/tram"
)

func main() {
	// Dist worker processes (tramload re-executes itself for -self dist) run
	// their share here and exit; every other invocation continues.
	tram.Main()
	var (
		addr      = flag.String("addr", "", "address of a running tramserve frontend")
		self      = flag.String("self", "", "start the server in this process: 'real' or 'dist' (mutually exclusive with -addr)")
		transport = flag.String("transport", "socket", "dist peer data plane for -self dist: socket, shm, or tcp")
		nodes     = flag.Int("nodes", 1, "-self topology: nodes")
		procs     = flag.Int("procs", 2, "-self topology: processes per node")
		workers   = flag.Int("workers", 4, "workers per process (destination space; for -addr it must match the server)")
		scheme    = flag.String("scheme", "WPs", "-self aggregation scheme")
		deadline  = flag.Duration("deadline", 200*time.Microsecond, "-self flush deadline")
		clients   = flag.Int("clients", 100_000, "simulated client event sources")
		conns     = flag.Int("conns", 64, "TCP connections multiplexing them")
		events    = flag.Int("events", 10, "events per simulated client")
		rate      = flag.Float64("rate", 0, "aggregate offered load in events/sec (0 = unpaced)")
		window    = flag.Int("window", 0, "per-connection unacked-event window (0 = client default)")
		batch     = flag.Int("batch", 0, "per-connection send batch (0 = client default)")
		seed      = flag.Int64("seed", 1, "destination stream seed")
		shape     = flag.String("shape", "uniform", "traffic shape: uniform, zipf (skewed destinations), or burst (on/off arrivals)")
		zipfS     = flag.Float64("zipf-s", 0, "zipf exponent for -shape zipf (0 = default 1.3; must be > 1)")
		burstOn   = flag.Duration("burst-on", 0, "on-phase length for -shape burst (0 = default 2ms)")
		burstOff  = flag.Duration("burst-off", 0, "off-phase length for -shape burst (0 = default 8ms)")
		adaptive  = flag.Bool("adaptive", false, "-self: enable per-destination adaptive aggregation on the server")
		jsonOut   = flag.String("json", "", "write the LoadReport JSON to this file ('-' for stdout)")
	)
	flag.Parse()
	if (*addr == "") == (*self == "") {
		fmt.Fprintln(os.Stderr, "tramload: pass exactly one of -addr or -self")
		os.Exit(2)
	}

	cfg := serve.LoadConfig{
		Addr:            *addr,
		Clients:         *clients,
		Conns:           *conns,
		EventsPerClient: *events,
		Workers:         *nodes * *procs * *workers,
		Rate:            *rate,
		Window:          *window,
		Batch:           *batch,
		Seed:            *seed,
		Shape: traffic.Spec{
			Kind:     *shape,
			ZipfS:    *zipfS,
			BurstOn:  *burstOn,
			BurstOff: *burstOff,
		},
	}
	if err := cfg.Shape.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tramload:", err)
		os.Exit(2)
	}

	// -self: stand the server up first and wire its drain into the load run.
	var srv *tram.Server
	var in *serveagg.Instance
	if *self != "" {
		var b tram.Backend
		switch *self {
		case "real":
			b = tram.Real
		case "dist":
			b = tram.Dist
		default:
			fmt.Fprintf(os.Stderr, "tramload: unknown -self %q (want real or dist)\n", *self)
			os.Exit(2)
		}
		var sch tram.Scheme
		found := false
		for _, s := range tram.Schemes() {
			if s.String() == *scheme {
				sch, found = s, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "tramload: unknown -scheme %q\n", *scheme)
			os.Exit(2)
		}
		p := serveagg.Params{
			Nodes: *nodes, Procs: *procs, Workers: *workers, Scheme: sch,
			FlushDeadline: *deadline,
			Adaptive:      tram.AdaptiveOptions{Enabled: *adaptive},
		}
		var err error
		srv, in, err = serveagg.Serve(b, p, "127.0.0.1:0", "", tram.DistTransport(*transport))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramload: serve:", err)
			os.Exit(1)
		}
		cfg.Addr = srv.Addr()
		cfg.Drain = func() error {
			_, err := srv.Drain()
			return err
		}
	}

	rep, err := serve.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tramload:", err)
		os.Exit(1)
	}

	if *jsonOut != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramload:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tramload:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("tramload: %d clients over %d conns: %d sent, %d acked, %.0f events/sec (offered %.0f), p50 %v, p99 %v, wall %.2fs\n",
		rep.Clients, rep.Conns, rep.Sent, rep.Acked, rep.Achieved, rep.Offered,
		time.Duration(rep.P50).Round(time.Microsecond), time.Duration(rep.P99).Round(time.Microsecond), rep.WallSec)

	// The contract the exit status asserts.
	fail := false
	if rep.Achieved <= 0 || rep.Acked <= 0 {
		fmt.Fprintln(os.Stderr, "tramload: FAIL zero throughput")
		fail = true
	}
	if rep.Acked != rep.Sent {
		fmt.Fprintf(os.Stderr, "tramload: FAIL acked %d != sent %d\n", rep.Acked, rep.Sent)
		fail = true
	}
	if srv != nil {
		m, err := srv.Drain() // idempotent: returns the load run's drain result
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramload: FAIL drain:", err)
			fail = true
		} else {
			total, err := serveagg.Sum(m, in)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tramload: FAIL", err)
				fail = true
			} else if total.Count != rep.Acked {
				fmt.Fprintf(os.Stderr, "tramload: FAIL drained account %d != acked %d (event loss)\n", total.Count, rep.Acked)
				fail = true
			} else {
				fmt.Printf("tramload: drain clean, account matches: %d events\n", total.Count)
			}
		}
	}
	if fail {
		os.Exit(1)
	}
}
