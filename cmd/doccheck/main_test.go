package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fixture repository under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// greenTree is a minimal repository every check passes on.
func greenTree() map[string]string {
	return map[string]string{
		"tram/config.go":                      "package tram\n\nconst TransportTCP = \"tcp\"\n\ntype Config struct{}\n",
		"internal/faultinject/faultinject.go": "package faultinject\n\nconst PointTCPWrite = \"transport.tcp-write\"\n",
		".github/workflows/ci.yml":            "name: ci\njobs:\n  test:\n    runs-on: x\n  docs:\n    runs-on: x\n",
		"ARCHITECTURE.md":                     "# Arch\n\nSee [README.md](README.md). The `tram.Config` type.\n",
		"docs/DEPLOY.md":                      "# Deploy\n\nUse `transport.tcp-write:drop:proc=1` and `Transport: \"tcp\"`.\nBack to [../ARCHITECTURE.md](../ARCHITECTURE.md).\n",
		"docs/SERVE.md":                       "# Serve\n\nSee [DEPLOY.md](DEPLOY.md); the `tram.Config` type again.\n",
		"docs/TUNING.md":                      "# Tuning\n\nKnobs live on `tram.Config`; see [SERVE.md](SERVE.md).\n",
		"README.md":                           "# Repo\n\nci.yml runs two jobs:\n\n- **test** — build.\n- **docs** — `cmd/doccheck` over [ARCHITECTURE.md](ARCHITECTURE.md)\n  and [docs/DEPLOY.md](docs/DEPLOY.md); see `internal/faultinject`.\n",
		"cmd/doccheck/main.go":                "package main\n",
	}
}

func TestGreenTreePasses(t *testing.T) {
	c := run(writeTree(t, greenTree()))
	if len(c.problems) != 0 {
		t.Fatalf("clean fixture reported problems: %v", c.problems)
	}
	if c.checked == 0 {
		t.Fatal("no claims checked — the scanners matched nothing")
	}
}

func TestDriftIsCaught(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(map[string]string)
		want   string // substring of the expected problem
	}{
		{
			name: "broken link",
			mutate: func(f map[string]string) {
				f["README.md"] = strings.Replace(f["README.md"], "(ARCHITECTURE.md)", "(MISSING.md)", 1)
			},
			want: "broken link",
		},
		{
			name: "stale tram identifier",
			mutate: func(f map[string]string) {
				f["ARCHITECTURE.md"] = strings.Replace(f["ARCHITECTURE.md"], "`tram.Config`", "`tram.Gone`", 1)
			},
			want: "no longer exists in the tram package",
		},
		{
			name: "unknown fault point",
			mutate: func(f map[string]string) {
				f["docs/DEPLOY.md"] = strings.Replace(f["docs/DEPLOY.md"],
					"transport.tcp-write:drop", "transport.udp-write:drop", 1)
			},
			want: "not declared in internal/faultinject",
		},
		{
			name: "unknown transport kind",
			mutate: func(f map[string]string) {
				f["docs/DEPLOY.md"] = strings.Replace(f["docs/DEPLOY.md"],
					"`Transport: \"tcp\"`", "`Transport: \"quic\"`", 1)
			},
			want: "unknown to tram/config.go",
		},
		{
			name: "missing repo path",
			mutate: func(f map[string]string) {
				f["README.md"] = strings.Replace(f["README.md"], "`cmd/doccheck`", "`cmd/nonesuch`", 1)
			},
			want: "does not exist",
		},
		{
			name: "CI job not listed",
			mutate: func(f map[string]string) {
				f[".github/workflows/ci.yml"] += "  chaos:\n    runs-on: x\n"
				f["README.md"] = strings.Replace(f["README.md"], "runs two jobs", "runs three jobs", 1)
			},
			want: `CI job "chaos" is not listed`,
		},
		{
			name: "stale job count",
			mutate: func(f map[string]string) {
				f["README.md"] = strings.Replace(f["README.md"], "runs two jobs", "runs seven jobs", 1)
			},
			want: "claims ci.yml runs seven jobs, but it declares 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := greenTree()
			tc.mutate(files)
			c := run(writeTree(t, files))
			if len(c.problems) != 1 {
				t.Fatalf("want exactly 1 problem, got %d: %v", len(c.problems), c.problems)
			}
			if !strings.Contains(c.problems[0], tc.want) {
				t.Fatalf("problem %q does not mention %q", c.problems[0], tc.want)
			}
		})
	}
}

// TestFencedCodeIsIgnored pins the rule that code blocks are illustrative:
// a broken-looking link or stale name inside ``` fences must not fail.
func TestFencedCodeIsIgnored(t *testing.T) {
	files := greenTree()
	files["README.md"] += "\n```go\nlib := tram.NewLib[T](codec) // [T](codec) parses like a link\nx := `tram.NotAThing`\n```\n"
	c := run(writeTree(t, files))
	if len(c.problems) != 0 {
		t.Fatalf("fenced code produced problems: %v", c.problems)
	}
}

// TestRealRepo runs the checker against the actual repository this test
// lives in, so `go test ./cmd/doccheck` is the same gate CI's docs job runs.
func TestRealRepo(t *testing.T) {
	c := run(filepath.Join("..", ".."))
	for _, p := range c.problems {
		t.Error(p)
	}
	if c.checked < 50 {
		t.Fatalf("only %d claims checked against the real repo — scanners lost coverage", c.checked)
	}
}
