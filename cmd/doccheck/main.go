// Command doccheck gates the documentation layer in CI. The prose documents
// (README.md, ARCHITECTURE.md, docs/DEPLOY.md, docs/SERVE.md) make checkable claims —
// links to files in this repository, names of identifiers in the tram
// package, fault-injection point strings, transport kind strings, and the
// list of CI jobs — and every one of those claims rots silently when the
// code moves. doccheck re-derives each claim from the source of truth and
// fails on drift:
//
//   - Intra-repo markdown links ([text](path)) must resolve to an existing
//     file or directory.
//   - Backticked tram.<Name> identifiers must still exist in the tram
//     package sources.
//   - Backticked repo paths (internal/..., cmd/..., examples/..., docs/...,
//     tram/...) must still exist.
//   - Fault-injection specs (point:action...) must name a point constant
//     declared in internal/faultinject.
//   - Transport kind strings quoted as `Transport: "..."` must appear in
//     tram/config.go.
//   - The README's CI section must bold-list every job id declared in
//     .github/workflows/ci.yml, and its spelled-out job count must match.
//
// Usage:
//
//	doccheck [-root .]
//
// Exits 0 with a summary when everything checks out, 1 with one line per
// problem otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docFiles are the prose documents under contract, relative to the root.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "docs/DEPLOY.md", "docs/SERVE.md", "docs/TUNING.md"}

var (
	linkRe  = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	tickRe  = regexp.MustCompile("`([^`]+)`")
	tramRe  = regexp.MustCompile(`^tram\.([A-Za-z_]\w*)`)
	pathRe  = regexp.MustCompile(`^(?:internal|cmd|examples|docs|tram)(?:/[\w.*-]+)*/?$`)
	faultRe = regexp.MustCompile(`^([a-z][a-z0-9.-]*):(?:crash|stall|drop|error)\b`)
	kindRe  = regexp.MustCompile(`^Transport: ("(?:\w+)")$`)
	jobRe   = regexp.MustCompile(`^  ([A-Za-z0-9_-]+):\s*$`)
	strRe   = regexp.MustCompile(`"([a-z][a-z0-9.-]*)"`)
	countRe = regexp.MustCompile(`runs ([a-z]+) jobs`)
	fenceRe = regexp.MustCompile("(?s)```.*?```")
)

// numberWords maps the spelled-out job counts the README may use.
var numberWords = map[string]int{
	"one": 1, "two": 2, "three": 3, "four": 4, "five": 5, "six": 6,
	"seven": 7, "eight": 8, "nine": 9, "ten": 10, "eleven": 11, "twelve": 12,
}

type checker struct {
	root     string
	problems []string
	checked  int
}

func (c *checker) failf(format string, args ...any) {
	c.problems = append(c.problems, fmt.Sprintf(format, args...))
}

// readDir concatenates every .go file directly inside dir (tests included:
// the docs reference test-suite structure too).
func (c *checker) readDir(dir string) string {
	entries, err := os.ReadDir(filepath.Join(c.root, dir))
	if err != nil {
		c.failf("%s: %v", dir, err)
		return ""
	}
	var b strings.Builder
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(c.root, dir, e.Name()))
		if err != nil {
			c.failf("%s: %v", e.Name(), err)
			continue
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

func (c *checker) exists(rel string) bool {
	_, err := os.Stat(filepath.Join(c.root, rel))
	return err == nil
}

// checkLinks resolves every intra-repo markdown link relative to the
// document that makes it.
func (c *checker) checkLinks(doc, text string) {
	for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		c.checked++
		rel := filepath.Join(filepath.Dir(doc), target)
		if !c.exists(rel) {
			c.failf("%s: broken link %q (resolved %s)", doc, m[1], rel)
		}
	}
}

// checkTokens validates the canonical names quoted in backticks: tram
// identifiers, repo paths, fault-injection specs, and transport kinds.
func (c *checker) checkTokens(doc, text, tramSrc, configSrc string, faultPoints map[string]bool) {
	for _, m := range tickRe.FindAllStringSubmatch(text, -1) {
		tok := m[1]
		switch {
		case tramRe.MatchString(tok):
			name := tramRe.FindStringSubmatch(tok)[1]
			c.checked++
			if !regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`).MatchString(tramSrc) {
				c.failf("%s: `%s` names %q, which no longer exists in the tram package", doc, tok, name)
			}
		case faultRe.MatchString(tok):
			point := faultRe.FindStringSubmatch(tok)[1]
			c.checked++
			if !faultPoints[point] {
				c.failf("%s: `%s` names fault point %q, not declared in internal/faultinject", doc, tok, point)
			}
		case kindRe.MatchString(tok):
			lit := kindRe.FindStringSubmatch(tok)[1]
			c.checked++
			if !strings.Contains(configSrc, lit) {
				c.failf("%s: `%s` names transport kind %s, unknown to tram/config.go", doc, tok, lit)
			}
		case pathRe.MatchString(tok):
			rel := strings.TrimSuffix(strings.TrimSuffix(tok, "/"), "/...")
			rel = strings.TrimSuffix(rel, "/*")
			if base := filepath.Base(rel); strings.ContainsAny(base, "*") {
				rel = filepath.Dir(rel)
			}
			c.checked++
			if !c.exists(rel) {
				c.failf("%s: `%s` references %s, which does not exist", doc, tok, rel)
			}
		}
	}
}

// checkCIJobs cross-references the README's CI section against the workflow
// file: every declared job id must be bold-listed, and the spelled-out
// count must match.
func (c *checker) checkCIJobs(readme string) {
	data, err := os.ReadFile(filepath.Join(c.root, ".github/workflows/ci.yml"))
	if err != nil {
		c.failf("ci.yml: %v", err)
		return
	}
	var jobs []string
	inJobs := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case line == "jobs:":
			inJobs = true
		case inJobs && jobRe.MatchString(line):
			jobs = append(jobs, jobRe.FindStringSubmatch(line)[1])
		}
	}
	if len(jobs) == 0 {
		c.failf("ci.yml: no jobs parsed")
		return
	}
	for _, job := range jobs {
		c.checked++
		if !strings.Contains(readme, "**"+job+"**") {
			c.failf("README.md: CI job %q is not listed in the CI section", job)
		}
	}
	c.checked++
	m := countRe.FindStringSubmatch(readme)
	switch {
	case m == nil:
		c.failf("README.md: no \"runs <n> jobs\" sentence found in the CI section")
	case numberWords[m[1]] != len(jobs):
		c.failf("README.md: claims ci.yml runs %s jobs, but it declares %d", m[1], len(jobs))
	}
}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	c := run(*root)
	if len(c.problems) > 0 {
		for _, p := range c.problems {
			fmt.Println("FAIL", p)
		}
		fmt.Printf("doccheck: %d problems (%d claims checked)\n", len(c.problems), c.checked)
		os.Exit(1)
	}
	fmt.Printf("doccheck: ok (%d claims checked across %d documents)\n", c.checked, len(docFiles))
}

// run performs every check against the repository at root and returns the
// checker with its accumulated problems.
func run(root string) *checker {
	c := &checker{root: root}

	tramSrc := c.readDir("tram")
	configSrc, err := os.ReadFile(filepath.Join(c.root, "tram/config.go"))
	if err != nil {
		c.failf("tram/config.go: %v", err)
	}
	faultPoints := map[string]bool{}
	faultSrc, err := os.ReadFile(filepath.Join(c.root, "internal/faultinject/faultinject.go"))
	if err != nil {
		c.failf("internal/faultinject: %v", err)
	} else {
		for _, m := range strRe.FindAllStringSubmatch(string(faultSrc), -1) {
			faultPoints[m[1]] = true
		}
	}

	var readme string
	for _, doc := range docFiles {
		data, err := os.ReadFile(filepath.Join(c.root, doc))
		if err != nil {
			c.failf("%s: %v", doc, err)
			continue
		}
		// Fenced code blocks are illustrative (shell sessions, Go
		// snippets), not claims; only prose is under contract.
		text := fenceRe.ReplaceAllString(string(data), "")
		if doc == "README.md" {
			readme = text
		}
		c.checkLinks(doc, text)
		c.checkTokens(doc, text, tramSrc, string(configSrc), faultPoints)
	}
	if readme != "" {
		c.checkCIJobs(readme)
	}
	return c
}
