// Command perfcheck gates perf regressions in CI: it compares a freshly
// generated engine-perf JSON (tramlab -bench-json) against the committed
// BENCH_core.json baseline and fails if allocs_per_event regressed.
//
// Only the allocation columns are gated — they are a property of the code
// (pooling discipline), not of the host, so they are stable across CI
// runners; wall-clock columns are reported but never gated.
//
// Points are matched by name. Simulator points get the standard tolerance
// (default 10%); points named real-* — the goroutine runtime, whose
// per-event allocations depend mildly on scheduling (sync.Pool behavior
// under preemption) — get the looser -real-tol (default 50%); points named
// dist-* — the multi-process backend, where the gated column is the
// coordinator's tiny per-item overhead (spawn + handshake + probes divided
// by the items the worker processes moved) — get -dist-tol (default 75%),
// the dist-shm-* points (the same coordinator overhead with the
// shared-memory ring transport carrying the data plane) get -shm-tol
// (default 75%), the dist-tcp-* points (loopback TCP streams carrying
// the data plane) get -tcp-tol (default 75%), and the adaptive-* points
// (the static-vs-adaptive delivery-latency probe — paced wall-clock runs
// whose per-event controller cost is tiny but scheduler-sensitive) get
// -adaptive-tol (default 50%).
// A point present in the baseline but missing from the fresh run fails the
// check (lost coverage); new points pass (they become the baseline when
// committed). Tiny baselines are compared with an absolute slack so a
// 0.0000‰ noise blip cannot fail a 0.00002 allocs/event point.
//
// With -serve-fresh, perfcheck also (or instead) gates the tramserve
// trajectory: the fresh tramlab -serve-json document against the committed
// BENCH_serve.json baseline. Serve gating runs the other way around — it is
// a throughput floor, not an allocation ceiling: every baseline point marked
// "gate" (the sustained-throughput and client-scale points; the paced
// latency-curve points are reported, never gated) must achieve at least
// baseline * (1 - serve-tol) acked events/sec. The default -serve-tol is
// deliberately loose (50%): absolute throughput varies with the CI runner,
// while a genuine serve-path regression (a lost fast path, an accidental
// serialization) costs integer factors.
//
// Usage:
//
//	perfcheck -base BENCH_core.json -fresh fresh.json [-tol 0.10] [-real-tol 0.50] [-dist-tol 0.75] [-shm-tol 0.75] [-tcp-tol 0.75] [-adaptive-tol 0.50]
//	perfcheck -serve-base BENCH_serve.json -serve-fresh fresh_serve.json [-serve-tol 0.50]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tramlib/internal/bench"
)

func load(path string) (bench.Perf, error) {
	var p bench.Perf
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	if p.Schema != "tramlib-core-perf/v1" {
		return p, fmt.Errorf("%s: unexpected schema %q", path, p.Schema)
	}
	return p, nil
}

// loadServe reads a tramlab -serve-json document.
func loadServe(path string) (bench.ServePerf, error) {
	var p bench.ServePerf
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	if p.Schema != bench.ServeSchema {
		return p, fmt.Errorf("%s: unexpected schema %q", path, p.Schema)
	}
	return p, nil
}

// warnHostMismatch flags baselines taken at a different parallelism than the
// fresh run: the comparison still runs (alloc columns are host-stable), but
// wall and throughput columns are then apples to oranges, so say so. A zero
// GOMAXPROCS means a baseline predating the field — skipped, not a mismatch.
func warnHostMismatch(baseCPU, freshCPU, baseMax, freshMax int) {
	if baseCPU != freshCPU {
		fmt.Printf("warn num_cpu differs: baseline %d, fresh %d (wall/throughput columns not comparable)\n",
			baseCPU, freshCPU)
	}
	if baseMax != 0 && freshMax != 0 && baseMax != freshMax {
		fmt.Printf("warn gomaxprocs differs: baseline %d, fresh %d (wall/throughput columns not comparable)\n",
			baseMax, freshMax)
	}
}

// checkServe gates the serve trajectory: a throughput floor on the gated
// points, lost-coverage detection on all of them. Returns true on failure.
func checkServe(basePath, freshPath string, tol float64) bool {
	base, err := loadServe(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(2)
	}
	fresh, err := loadServe(freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(2)
	}
	warnHostMismatch(base.NumCPU, fresh.NumCPU, base.GoMaxProcs, fresh.GoMaxProcs)
	freshByName := map[string]bench.ServePoint{}
	for _, p := range fresh.Points {
		freshByName[p.Name] = p
	}
	failed := false
	for _, b := range base.Points {
		f, ok := freshByName[b.Name]
		if !ok {
			fmt.Printf("FAIL %-22s missing from fresh serve run (lost coverage)\n", b.Name)
			failed = true
			continue
		}
		if !b.Gate {
			fmt.Printf("info %-22s events/sec %.0f -> %.0f  p99 %.2fms -> %.2fms (curve point, not gated)\n",
				b.Name, b.AchievedEPS, f.AchievedEPS, float64(b.P99AckNS)/1e6, float64(f.P99AckNS)/1e6)
			continue
		}
		floor := b.AchievedEPS * (1 - tol)
		status := "ok  "
		if f.AchievedEPS < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s events/sec %.0f -> %.0f (floor %.0f)  p99 %.2fms -> %.2fms\n",
			status, b.Name, b.AchievedEPS, f.AchievedEPS, floor,
			float64(b.P99AckNS)/1e6, float64(f.P99AckNS)/1e6)
	}
	for _, f := range fresh.Points {
		if _, seen := func() (bench.ServePoint, bool) {
			for _, b := range base.Points {
				if b.Name == f.Name {
					return b, true
				}
			}
			return bench.ServePoint{}, false
		}(); !seen {
			fmt.Printf("new  %-22s events/sec %.0f (no baseline; commit the fresh JSON to adopt)\n",
				f.Name, f.AchievedEPS)
		}
	}
	return failed
}

func main() {
	var (
		basePath  = flag.String("base", "BENCH_core.json", "committed baseline JSON")
		freshPath = flag.String("fresh", "", "freshly generated JSON to check")
		tol       = flag.Float64("tol", 0.10, "allowed relative allocs_per_event increase for simulator points")
		realTol   = flag.Float64("real-tol", 0.50, "allowed relative increase for real-* (goroutine runtime) points")
		distTol   = flag.Float64("dist-tol", 0.75, "allowed relative increase for dist-* (multi-process coordinator) points")
		shmTol    = flag.Float64("shm-tol", 0.75, "allowed relative increase for dist-shm-* (shared-memory transport) points")
		tcpTol    = flag.Float64("tcp-tol", 0.75, "allowed relative increase for dist-tcp-* (TCP transport) points")
		adptTol   = flag.Float64("adaptive-tol", 0.50, "allowed relative increase for adaptive-* (flush-controller latency probe) points")
		slack     = flag.Float64("slack", 0.02, "absolute allocs_per_event slack added to every bound")

		serveBase  = flag.String("serve-base", "BENCH_serve.json", "committed tramserve baseline JSON")
		serveFresh = flag.String("serve-fresh", "", "freshly generated tramlab -serve-json document to check")
		serveTol   = flag.Float64("serve-tol", 0.50, "allowed relative achieved-events/sec decrease for gated serve points")
	)
	flag.Parse()
	if *freshPath == "" && *serveFresh == "" {
		fmt.Fprintln(os.Stderr, "perfcheck: -fresh or -serve-fresh is required")
		os.Exit(2)
	}
	if *freshPath == "" {
		if checkServe(*serveBase, *serveFresh, *serveTol) {
			fmt.Println("perfcheck: serve throughput regression detected")
			os.Exit(1)
		}
		fmt.Println("perfcheck: ok")
		return
	}

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(2)
	}

	warnHostMismatch(base.NumCPU, fresh.NumCPU, base.GoMaxProcs, fresh.GoMaxProcs)

	freshByName := map[string]bench.PerfPoint{}
	for _, p := range fresh.Points {
		freshByName[p.Name] = p
	}

	failed := false
	for _, b := range base.Points {
		f, ok := freshByName[b.Name]
		if !ok {
			fmt.Printf("FAIL %-22s missing from fresh run (lost coverage)\n", b.Name)
			failed = true
			continue
		}
		t := *tol
		if strings.HasPrefix(b.Name, "real-") {
			t = *realTol
		}
		if strings.HasPrefix(b.Name, "dist-") {
			t = *distTol
		}
		if strings.HasPrefix(b.Name, "dist-shm-") {
			t = *shmTol
		}
		if strings.HasPrefix(b.Name, "dist-tcp-") {
			t = *tcpTol
		}
		if strings.HasPrefix(b.Name, "adaptive-") {
			t = *adptTol
		}
		bound := b.AllocsPerEvent*(1+t) + *slack
		status := "ok  "
		if f.AllocsPerEvent > bound {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s allocs/event %.6f -> %.6f (bound %.6f)  wall %.1fms -> %.1fms\n",
			status, b.Name, b.AllocsPerEvent, f.AllocsPerEvent, bound, b.WallMS, f.WallMS)
	}
	for _, f := range fresh.Points {
		seen := false
		for _, b := range base.Points {
			if b.Name == f.Name {
				seen = true
				break
			}
		}
		if !seen {
			fmt.Printf("new  %-22s allocs/event %.6f (no baseline; commit the fresh JSON to adopt)\n",
				f.Name, f.AllocsPerEvent)
		}
	}
	if *serveFresh != "" && checkServe(*serveBase, *serveFresh, *serveTol) {
		failed = true
	}
	if failed {
		fmt.Println("perfcheck: regression detected")
		os.Exit(1)
	}
	fmt.Println("perfcheck: ok")
}
