// Command tramserve runs the live aggregation counter (internal/apps/serveagg)
// as a long-running ingestion service: a TCP frontend accepts wire-framed
// events from any number of concurrent clients (cmd/tramload, serve.Client),
// routes them into the aggregation runtime of the chosen backend, and serves
// live metrics on an HTTP scrape endpoint. SIGINT/SIGTERM triggers a graceful
// drain: the listener closes, every client gets its final acknowledgment,
// all buffers flush, the topology quiesces, and the final account — which
// covers every acknowledged event — prints before exit (docs/SERVE.md).
//
// Usage:
//
//	tramserve -listen 127.0.0.1:7600                      # Real backend
//	tramserve -listen :7600 -metrics :7601                # + scrape endpoint
//	tramserve -backend dist -procs 4 -workers 4           # frontend on worker
//	                                                      # process 0
//	tramserve -backend dist -transport shm                 # shm peer rings
//	tramserve -scheme PP -deadline 500us -ingress-cap 8192
//
// The process exits 0 after a clean drain, 1 on any serve failure (a dead
// worker process surfaces as a typed *tram.PeerFailureError naming the
// process, to connected clients and on stderr alike).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tramlib/internal/apps/serveagg"
	"tramlib/tram"
)

func main() {
	// Dist worker processes (tramserve re-executes itself for -backend dist)
	// run their share here and exit; every other invocation continues.
	tram.Main()
	var (
		listen     = flag.String("listen", "127.0.0.1:7600", "client listener address")
		metrics    = flag.String("metrics", "", "metrics scrape address (empty = disabled)")
		backend    = flag.String("backend", "real", "execution backend: real or dist")
		transport  = flag.String("transport", "socket", "dist peer data plane: socket, shm, or tcp")
		nodes      = flag.Int("nodes", 1, "nodes of the topology")
		procs      = flag.Int("procs", 2, "processes per node")
		workers    = flag.Int("workers", 4, "workers per process")
		scheme     = flag.String("scheme", "WPs", "aggregation scheme (Direct, WW, WPs, WsP, PP)")
		buffer     = flag.Int("buffer", 64, "aggregation buffer capacity (items)")
		deadline   = flag.Duration("deadline", 200*time.Microsecond, "flush deadline bounding in-buffer latency")
		ingressCap = flag.Int("ingress-cap", 0, "per-destination admission window (0 = runtime default)")
		drainTO    = flag.Duration("drain-timeout", 0, "graceful drain bound (0 = backend default)")
	)
	flag.Parse()

	var b tram.Backend
	switch *backend {
	case "real":
		b = tram.Real
	case "dist":
		b = tram.Dist
	default:
		fmt.Fprintf(os.Stderr, "tramserve: unknown -backend %q (want real or dist)\n", *backend)
		os.Exit(2)
	}
	var sch tram.Scheme
	found := false
	for _, s := range tram.Schemes() {
		if s.String() == *scheme {
			sch, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "tramserve: unknown -scheme %q\n", *scheme)
		os.Exit(2)
	}

	p := serveagg.Params{
		Nodes: *nodes, Procs: *procs, Workers: *workers, Scheme: sch,
		BufferItems: *buffer, FlushDeadline: *deadline, IngressCap: *ingressCap,
		DrainTimeout: *drainTO,
	}
	srv, in, err := serveagg.Serve(b, p, *listen, *metrics, tram.DistTransport(*transport))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tramserve:", err)
		os.Exit(1)
	}
	topo := tram.SMP(*nodes, *procs, *workers)
	fmt.Printf("tramserve: %v %v on %s, serving on %s", topo, sch, *backend, srv.Addr())
	if srv.MetricsAddr() != "" {
		fmt.Printf(", metrics on http://%s/metrics", srv.MetricsAddr())
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "tramserve: %v, draining...\n", s)

	m, err := srv.Drain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tramserve: drain:", err)
		os.Exit(1)
	}
	total, err := serveagg.Sum(m, in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tramserve:", err)
		os.Exit(1)
	}
	fmt.Printf("tramserve: drained clean: %d events delivered (xor %016x), %d batches, %d deadline flushes, wall %v\n",
		total.Count, total.Xor, m.Batches, m.DeadlineFlushes, m.Wall.Round(time.Millisecond))
}
