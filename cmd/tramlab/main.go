// Command tramlab regenerates the paper's tables and figures on the
// simulator. Each figure of the evaluation section (plus the §III-A comm
// thread analysis, id "a1") has a runner; results print as aligned text
// tables or CSV.
//
// Usage:
//
//	tramlab -list
//	tramlab -fig 9                   # one figure at default (laptop) scale
//	tramlab -all                     # everything, points parallel over all cores
//	tramlab -all -j 1                # same results, single-threaded
//	tramlab -fig 9 -workerdiv 1 -itemdiv 1   # paper scale (heavy!)
//	tramlab -fig 12 -csv             # machine-readable output
//	tramlab -fig 3 -quiet            # suppress progress lines on stderr
//	tramlab -bench-json BENCH_core.json      # emit the engine perf trajectory
//	tramlab -serve-json BENCH_serve.json     # emit the tramserve throughput +
//	                                 # ack-latency-vs-offered-load trajectory
//	tramlab -real                    # run kernels on the real goroutine runtime
//	                                 # and print simulated-vs-measured tables
//	tramlab -backend dist            # run kernels across real OS processes
//	                                 # (tram.Dist) and print real-vs-dist tables
//	tramlab -backend dist -transport shm     # dist index-gather/ping-ack over
//	                                 # shared-memory rings instead of sockets
//	tramlab -backend dist -transport tcp     # ...over loopback TCP streams
//	tramlab -adaptive                # static vs adaptive flush control under
//	                                 # uniform, zipf, and bursty traffic
//	tramlab -fig 9 -cpuprofile cpu.pb.gz     # profile any run (also
//	                                 # -memprofile and -trace)
//
// Experiment points within a figure are independent simulations; -j N runs
// them on a deterministic worker pool (tables are byte-identical for every
// N). -bench-json measures host-side engine performance (events/sec,
// allocs/event, harness scaling) and writes it as JSON for perf tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"tramlib/internal/bench"
	"tramlib/tram"
)

func main() {
	// Dist worker processes (tramlab re-executes itself for -backend dist)
	// run their share here and exit; every other invocation continues.
	tram.Main()
	var (
		fig       = flag.String("fig", "", "figure id to run (1,3,8,9,10,11,12,13,14,15,16,17,18,a1)")
		all       = flag.Bool("all", false, "run every figure")
		list      = flag.Bool("list", false, "list available figures")
		workerdiv = flag.Int("workerdiv", 4, "divide the paper's 64 workers/node by this factor (1 = paper scale)")
		itemdiv   = flag.Int("itemdiv", 4, "divide per-PE item counts by this factor (1 = paper scale)")
		igdiv     = flag.Int("igdiv", 0, "extra divisor for index-gather requests (default 8*itemdiv)")
		nodescap  = flag.Int("nodes", 0, "cap node sweeps at this many nodes (0 = figure default)")
		seed      = flag.Uint64("seed", 1, "random seed")
		jobs      = flag.Int("j", runtime.NumCPU(), "experiment points to run concurrently (results identical for any value)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet     = flag.Bool("quiet", false, "suppress progress output on stderr")
		benchJSON = flag.String("bench-json", "", "measure engine perf (events/sec, allocs/event, harness scaling) and write JSON to this file ('-' for stdout)")
		serveJSON = flag.String("serve-json", "", "measure the tramserve subsystem (sustained throughput, p99 ack latency vs offered load, the 100k-client scale point) and write JSON to this file ('-' for stdout)")
		adaptive  = flag.Bool("adaptive", false, "run the static-vs-adaptive aggregation latency sweep (uniform/zipf/burst traffic) and print the comparison table")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		traceFile = flag.String("trace", "", "write a runtime execution trace of the run to this file (go tool trace)")
		real      = flag.Bool("real", false, "run the kernels on the real-concurrency runtime (goroutines + lock-free buffers) and emit simulated-vs-measured tables")
		backend   = flag.String("backend", "", "comparison tables to run: 'real' (sim vs goroutine runtime, same as -real) or 'dist' (goroutine runtime vs one OS process per ProcID)")
		trans     = flag.String("transport", "socket", "dist peer data plane for the index-gather and ping-ack tables: 'socket' (wire-framed Unix sockets), 'shm' (mmap'd shared-memory rings), or 'tcp' (loopback TCP streams); the dist histogram table always compares all three")
	)
	flag.Parse()
	switch *backend {
	case "":
	case "real":
		*real = true
	case "dist":
	default:
		fmt.Fprintf(os.Stderr, "tramlab: unknown -backend %q (want 'real' or 'dist')\n", *backend)
		os.Exit(2)
	}
	switch *trans {
	case "socket", "shm", "tcp":
	default:
		fmt.Fprintf(os.Stderr, "tramlab: unknown -transport %q (want 'socket', 'shm', or 'tcp')\n", *trans)
		os.Exit(2)
	}

	// Profiling covers everything the invocation runs; the deferred stops
	// fire on main's return (error paths that os.Exit lose the tail, as
	// with any Go tool).
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tramlab:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tramlab:", err)
			}
		}()
	}

	if *list {
		seen := map[string]bool{}
		for _, f := range bench.Figures() {
			if seen[f.Title] {
				continue
			}
			seen[f.Title] = true
			fmt.Printf("  %-3s %s\n", f.ID, f.Title)
		}
		names := make([]string, 0, len(tram.Schemes()))
		for _, s := range tram.Schemes() {
			names = append(names, s.String())
		}
		fmt.Printf("schemes: %s\n", strings.Join(names, ", "))
		return
	}

	opts := bench.Options{
		WorkerDiv:     *workerdiv,
		ItemDiv:       *itemdiv,
		IGItemDiv:     *igdiv,
		NodesCap:      *nodescap,
		Seed:          *seed,
		Jobs:          *jobs,
		DistTransport: *trans,
	}
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	opts.Progress = progress

	if *benchJSON != "" {
		perf := bench.CorePerf(opts)
		out, err := json.MarshalIndent(perf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *benchJSON == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*benchJSON, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		if !*all && *fig == "" && !*real && *serveJSON == "" {
			return
		}
	}

	if *serveJSON != "" {
		perf := bench.ServeCurve(opts)
		out, err := json.MarshalIndent(perf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *serveJSON == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*serveJSON, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tramlab:", err)
			os.Exit(1)
		}
		if !*all && *fig == "" && !*real && *backend != "dist" {
			return
		}
	}

	if *adaptive {
		for _, tb := range bench.AdaptiveTables(opts) {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		if !*all && *fig == "" && !*real && *backend != "dist" {
			return
		}
	}

	if *real {
		tables := bench.RealTables(opts)
		for _, tb := range tables {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		if !*all && *fig == "" && *backend != "dist" {
			return
		}
	}

	if *backend == "dist" {
		tables := bench.DistTables(opts)
		for _, tb := range tables {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		if !*all && *fig == "" {
			return
		}
	}

	var ids []string
	switch {
	case *all:
		seen := map[string]bool{}
		for _, f := range bench.Figures() {
			if seen[f.Title] {
				continue
			}
			seen[f.Title] = true
			ids = append(ids, f.ID)
		}
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	default:
		fmt.Fprintln(os.Stderr, "tramlab: pass -fig <id>, -all, -real, -backend dist, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		f, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "tramlab: unknown figure %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := f.Run(opts)
		if progress != nil {
			fmt.Fprintf(progress, "fig %s finished in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		for _, tb := range tables {
			if *csv {
				fmt.Print(tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
	}
}
